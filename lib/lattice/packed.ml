(* Packed-cut lattice engine.

   The generic walk in [Lattice] represents every cut as a fresh [int
   array], hashes cuts with the polymorphic hasher, and queues boxed
   arrays — fine as a reference implementation, but allocation and
   pointer chasing dominate the walk.  When the full lattice size
   Π (lenᵢ + 1) fits in a tagged 63-bit int (every experiment and test
   in this repo today), a cut can instead be a single immediate int
   under a mixed-radix encoding:

       code(c) = Σᵢ c.(i) · strideᵢ      strideᵢ = Π_{i' < i} (len_{i'} + 1)

   so successor-by-one-event of process i is [code + strideᵢ] — no
   allocation, no write barrier, and the visited table is either a
   plain [Bytes] indexed by code (dense case) or an open-addressing int
   hash set (sparse case), never the polymorphic hasher.

   The per-event vector stamps are flattened into one contiguous int
   plane so the consistency check walks cache-local memory instead of
   chasing [array array array] pointers.

   The walk itself is a level-synchronous BFS over a flat int frontier:
   each frontier entry is [n + 1] ints — the packed code followed by the
   decoded components (carried along so no division is needed on the hot
   path).  Sequential expansion fuses candidate generation, visited
   dedup, and the append into the next frontier in one pass.  The
   opt-in parallel mode instead fans the candidate generation (the
   O(n²) consistency checks) out over the PR-2 [Psn_util.Parallel]
   domain pool in frontier-order chunks and merges/dedups sequentially
   in chunk order — the same candidate sequence, so the parallel walk
   builds exactly the same frontiers as the sequential one.

   The dedup may mark a candidate visited before its consistency check:
   extension consistency is intrinsic to the extended cut (given a
   consistent parent, the extension is consistent iff the new event's
   prerequisites lie inside it, and any parent of the same cut yields
   the same verdict), so blacklisting an inconsistent candidate is safe.

   Visit order is identical to the generic FIFO walk in [Lattice]: the
   queue there drains level by level, successors are generated per cut
   in process order and deduplicated at first generation — precisely
   this engine's frontier order.  The differential tests in
   test/test_lattice.ml pin the equivalence (counts, verdicts, cut
   sequences, and cap behaviour). *)

type stamps = int array array array

type verdict = Exact of int | At_least of int

let default_cap = 2_000_000

type plan = {
  n : int;  (* processes *)
  lens : int array;  (* events per process *)
  stride : int array;  (* mixed-radix place values *)
  total : int;  (* Π (lens.(i) + 1) — full lattice size *)
  top_code : int;  (* total - 1: the cut including every event *)
  plane : int array;  (* stamp storage: component j of event (i,k) at
                         row_off.(ev_base.(i) + k) + j *)
  ev_base : int array;  (* event-index base of process i *)
  row_off : int array;  (* flat offset of each event's stamp in [plane]:
                           densely packed rows for copied stamps, or the
                           stamp handles of a live [Stamp_plane] — one
                           load replaces the row multiply either way *)
}

(* Above this, the dense [Bytes] visited table would cost more memory
   than the open-addressing int set; measured behaviour is identical
   either way. *)
let dense_limit = 1 lsl 22

(* [None] when Π (lenᵢ + 1) would overflow a 63-bit int — the caller
   falls back to the generic array-cut walk (which caps anyway: such a
   lattice has ≥ 2⁶² cuts). *)
(* Shared radix/stride computation; [None] on overflow. *)
let layout ~n ~(lens : int array) =
  let stride = Array.make n 0 in
  let total = ref 1 in
  let overflow = ref false in
  for i = 0 to n - 1 do
    stride.(i) <- !total;
    let radix = lens.(i) + 1 in
    if !total > max_int / radix then overflow := true
    else total := !total * radix
  done;
  if !overflow then None
  else begin
    let ev_base = Array.make n 0 in
    let events = ref 0 in
    for i = 0 to n - 1 do
      ev_base.(i) <- !events;
      events := !events + lens.(i)
    done;
    Some (stride, !total, ev_base, !events)
  end

let plan_of_stamps (stamps : stamps) : plan option =
  let n = Array.length stamps in
  let lens = Array.map Array.length stamps in
  match layout ~n ~lens with
  | None -> None
  | Some (stride, total, ev_base, events) ->
      let plane = Array.make (max 1 (events * n)) 0 in
      let row_off = Array.make (max 1 events) 0 in
      Array.iteri
        (fun i evs ->
          Array.iteri
            (fun k v ->
              let e = ev_base.(i) + k in
              let off = e * n in
              row_off.(e) <- off;
              for j = 0 to n - 1 do
                plane.(off + j) <- v.(j)
              done)
            evs)
        stamps;
      Some
        { n; lens; stride; total; top_code = total - 1; plane; ev_base; row_off }

(* Consume a live [Stamp_plane] directly: [handles.(i).(k)] is the stamp
   of process i's (k+1)-th event, and the plan's [plane] is the arena's
   backing array — no copy.  The backing reference is captured now; a
   later growing [alloc] replaces the arena's array, but growth blits,
   so reads of the already-allocated rows named here stay correct.
   [reset] of the arena, however, invalidates the plan with its
   handles.  Assumes the caller validated the handles
   ([Lattice.validate_plane]). *)
let plan_of_plane (sp : Psn_clocks.Stamp_plane.t)
    ~(handles : Psn_clocks.Stamp_plane.handle array array) : plan option =
  let n = Array.length handles in
  let lens = Array.map Array.length handles in
  match layout ~n ~lens with
  | None -> None
  | Some (stride, total, ev_base, events) ->
      let row_off = Array.make (max 1 events) 0 in
      Array.iteri
        (fun i hs -> Array.iteri (fun k h -> row_off.(ev_base.(i) + k) <- h) hs)
        handles;
      Some
        {
          n;
          lens;
          stride;
          total;
          top_code = total - 1;
          plane = Psn_clocks.Stamp_plane.backing sp;
          ev_base;
          row_off;
        }

(* --- growable flat int buffer (frontiers and candidate lists) --- *)

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create cap = { a = Array.make (max cap 16) 0; len = 0 }
  let clear t = t.len <- 0

  let ensure t extra =
    let need = t.len + extra in
    if need > Array.length t.a then begin
      let cap = ref (Array.length t.a) in
      while !cap < need do
        cap := !cap * 2
      done;
      let a = Array.make !cap 0 in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end
end

(* --- visited table: dense byte plane or open-addressing int set --- *)

type visited =
  | Dense of Bytes.t
  | Sparse of sparse

and sparse = { mutable keys : int array; mutable mask : int; mutable size : int }

let visited_create total =
  if total <= dense_limit then Dense (Bytes.make total '\000')
  else Sparse { keys = Array.make 4096 (-1); mask = 4095; size = 0 }

(* Fibonacci hashing on the code; [land mask] keeps the slot in range
   whatever the sign of the multiply's wrapped result. *)
let[@inline] sparse_start code mask = ((code * 0x2545F4914F6CDD1D) lsr 17) land mask

let sparse_grow s =
  let old = s.keys in
  let cap = 2 * Array.length old in
  let keys = Array.make cap (-1) in
  let mask = cap - 1 in
  Array.iter
    (fun code ->
      if code >= 0 then begin
        let i = ref (sparse_start code mask) in
        while keys.(!i) >= 0 do
          i := (!i + 1) land mask
        done;
        keys.(!i) <- code
      end)
    old;
  s.keys <- keys;
  s.mask <- mask

(* Mark [code] visited; [true] iff it was not already. *)
let visited_add visited code =
  match visited with
  | Dense b ->
      Bytes.unsafe_get b code = '\000'
      && begin
           Bytes.unsafe_set b code '\001';
           true
         end
  | Sparse s ->
      if 2 * (s.size + 1) >= Array.length s.keys then sparse_grow s;
      let keys = s.keys and mask = s.mask in
      let i = ref (sparse_start code mask) in
      let k = ref (Array.unsafe_get keys !i) in
      while !k >= 0 && !k <> code do
        i := (!i + 1) land mask;
        k := Array.unsafe_get keys !i
      done;
      !k <> code
      && begin
           Array.unsafe_set keys !i code;
           s.size <- s.size + 1;
           true
         end

(* --- frontier expansion --- *)

(* Consistency of the single-event extension of the entry at [o] by
   process [i] whose next event index is [ci]: the new event's stamp
   must lie componentwise inside the extended cut (own component
   excepted). *)
let[@inline] extension_ok plan (src : int array) o i ci =
  let n = plan.n in
  let off = Array.unsafe_get plan.row_off (Array.unsafe_get plan.ev_base i + ci) in
  let plane = plan.plane in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < n do
    if
      !j <> i
      && Array.unsafe_get plane (off + !j) > Array.unsafe_get src (o + 1 + !j)
    then ok := false;
    incr j
  done;
  !ok

(* Append the successor entry (parent at [src.(o)], process [i] advanced
   to [ci + 1], packed code [code']) to [nx]. *)
let[@inline] append_successor plan (src : int array) o i ci code' (nx : Ibuf.t) =
  let n = plan.n in
  Ibuf.ensure nx (n + 1);
  let b = nx.Ibuf.a and q = nx.Ibuf.len in
  Array.unsafe_set b q code';
  for t = 0 to n - 1 do
    Array.unsafe_set b (q + 1 + t) (Array.unsafe_get src (o + 1 + t))
  done;
  Array.unsafe_set b (q + 1 + i) (ci + 1);
  nx.Ibuf.len <- q + n + 1

(* Fused sequential expansion of one frontier entry: generate, dedup,
   and append unseen consistent successors to [nx] in one pass. *)
let expand_entry plan visited (src : int array) o (nx : Ibuf.t) =
  let n = plan.n in
  let lens = plan.lens and stride = plan.stride in
  let code = Array.unsafe_get src o in
  for i = 0 to n - 1 do
    let ci = Array.unsafe_get src (o + 1 + i) in
    if ci < Array.unsafe_get lens i then begin
      let code' = code + Array.unsafe_get stride i in
      if visited_add visited code' && extension_ok plan src o i ci then
        append_successor plan src o i ci code' nx
    end
  done

(* Candidate generation only (no dedup): used by the parallel path,
   where workers must not touch the visited table.  Emits consistent
   successors in (entry, process) order. *)
let push_candidates plan (src : int array) o (out : Ibuf.t) =
  let n = plan.n in
  let lens = plan.lens and stride = plan.stride in
  let code = Array.unsafe_get src o in
  for i = 0 to n - 1 do
    let ci = Array.unsafe_get src (o + 1 + i) in
    if
      ci < Array.unsafe_get lens i
      && extension_ok plan src o i ci
    then append_successor plan src o i ci (code + Array.unsafe_get stride i) out
  done

(* Below this many frontier entries the domain-pool dispatch costs more
   than the consistency checks it spreads. *)
let par_threshold = 128

(* Parallel candidate generation: the frontier splits into
   index-contiguous chunks mapped on the domain pool; chunk outputs
   concatenate in chunk order, giving the same candidate sequence as a
   sequential scan. *)
let generate_parallel plan (f : Ibuf.t) (cand : Ibuf.t) =
  let esz = plan.n + 1 in
  let entries = f.Ibuf.len / esz in
  let d = Psn_util.Parallel.default_domains () in
  let nchunks = max 1 (min entries (d * 4)) in
  let per = (entries + nchunks - 1) / nchunks in
  let chunks =
    Array.init nchunks (fun c -> (c * per, min entries ((c + 1) * per)))
  in
  let parts =
    Psn_util.Parallel.map_array
      (fun (lo, hi) ->
        let out = Ibuf.create (max 16 ((hi - lo) * esz)) in
        for e = lo to hi - 1 do
          push_candidates plan f.Ibuf.a (e * esz) out
        done;
        (out.Ibuf.a, out.Ibuf.len))
      chunks
  in
  Array.iter
    (fun (a, len) ->
      Ibuf.ensure cand len;
      Array.blit a 0 cand.Ibuf.a cand.Ibuf.len len;
      cand.Ibuf.len <- cand.Ibuf.len + len)
    parts

(* Observability hook: called once per BFS level with the frontier's
   entry count, from every walk driver (count/walk/is_chain/modalities).
   A plain ref so this library keeps its dependency set; [None] costs one
   branch per level, nothing per entry.  Not domain-safe: install only
   around sequential walks. *)
let frontier_probe : (int -> unit) option ref = ref None

(* Expand a whole frontier level into [nx].  [cand] is the reusable
   scratch of the parallel path.  Sequential and parallel paths build
   byte-identical next frontiers. *)
let expand_level plan visited ~parallel (f : Ibuf.t) (nx : Ibuf.t)
    (cand : Ibuf.t) =
  let esz = plan.n + 1 in
  (match !frontier_probe with
  | Some probe -> probe (f.Ibuf.len / esz)
  | None -> ());
  Ibuf.clear nx;
  if (not parallel) || f.Ibuf.len / esz < par_threshold then begin
    let o = ref 0 in
    while !o < f.Ibuf.len do
      expand_entry plan visited f.Ibuf.a !o nx;
      o := !o + esz
    done
  end
  else begin
    Ibuf.clear cand;
    generate_parallel plan f cand;
    let p = ref 0 in
    while !p < cand.Ibuf.len do
      if visited_add visited (Array.unsafe_get cand.Ibuf.a !p) then begin
        Ibuf.ensure nx esz;
        Array.blit cand.Ibuf.a !p nx.Ibuf.a nx.Ibuf.len esz;
        nx.Ibuf.len <- nx.Ibuf.len + esz
      end;
      p := !p + esz
    done
  end

let seed_bottom plan (f : Ibuf.t) =
  let esz = plan.n + 1 in
  Ibuf.ensure f esz;
  Array.fill f.Ibuf.a 0 esz 0;
  f.Ibuf.len <- esz

(* --- walk drivers --- *)

(* Count-only walk: no per-cut callback at all — the cap check is
   per-level arithmetic.  Mirrors the generic cap semantics: the walk
   reports [At_least cap] as soon as the cap-th cut is visited, even if
   nothing was left to explore. *)
let count plan ?(cap = default_cap) ?(parallel = false) () =
  let frontier = ref (Ibuf.create 64) in
  let next = ref (Ibuf.create 64) in
  let cand = Ibuf.create 16 in
  seed_bottom plan !frontier;
  let visited = visited_create plan.total in
  ignore (visited_add visited 0);
  let esz = plan.n + 1 in
  let count = ref 0 in
  let capped = ref false in
  while !frontier.Ibuf.len > 0 && not !capped do
    let f = !frontier in
    let entries = f.Ibuf.len / esz in
    if !count + entries >= cap then begin
      count := cap;
      capped := true
    end
    else begin
      count := !count + entries;
      expand_level plan visited ~parallel f !next cand;
      let tmp = !frontier in
      frontier := !next;
      next := tmp
    end
  done;
  if !capped then At_least !count else Exact !count

(* Visiting walk: [visit buf off] sees each consistent cut exactly once,
   in the generic walk's order (entry = code :: components). *)
let walk plan ?(cap = default_cap) ?(parallel = false) visit =
  let frontier = ref (Ibuf.create 64) in
  let next = ref (Ibuf.create 64) in
  let cand = Ibuf.create 16 in
  seed_bottom plan !frontier;
  let visited = visited_create plan.total in
  ignore (visited_add visited 0);
  let esz = plan.n + 1 in
  let count = ref 0 in
  let capped = ref false in
  while !frontier.Ibuf.len > 0 && not !capped do
    let f = !frontier in
    let o = ref 0 in
    while (not !capped) && !o < f.Ibuf.len do
      visit f.Ibuf.a !o;
      incr count;
      if !count >= cap then capped := true;
      o := !o + esz
    done;
    if !capped then f.Ibuf.len <- 0
    else begin
      expand_level plan visited ~parallel f !next cand;
      let tmp = !frontier in
      frontier := !next;
      next := tmp
    end
  done;
  if !capped then At_least !count else Exact !count

(* Enumerate in visit order; each cut is a fresh array (the public
   [Lattice.consistent_cuts] contract). *)
let cuts plan ?cap ?parallel () =
  let n = plan.n in
  let acc = ref [] in
  let verdict =
    walk plan ?cap ?parallel (fun buf o -> acc := Array.sub buf (o + 1) n :: !acc)
  in
  (List.rev !acc, verdict)

(* The consistent cuts form a chain iff every BFS level holds exactly
   one cut (the sublattice always reaches ⊤, and a single level-(k+1)
   cut is a superset of the single level-k cut).  Matches the generic
   [is_chain]: any level with two cuts has an incomparable pair, and a
   capped walk reports [false]. *)
let is_chain plan ?(cap = default_cap) () =
  let frontier = ref (Ibuf.create 64) in
  let next = ref (Ibuf.create 64) in
  let cand = Ibuf.create 16 in
  seed_bottom plan !frontier;
  let visited = visited_create plan.total in
  ignore (visited_add visited 0);
  let esz = plan.n + 1 in
  let count = ref 0 in
  let result = ref true in
  let continue = ref true in
  while !continue && !frontier.Ibuf.len > 0 do
    let f = !frontier in
    incr count;
    if f.Ibuf.len > esz || !count >= cap then begin
      (* two same-level cuts are incomparable; a capped walk is [false]
         just as the generic [At_least] verdict is *)
      result := false;
      continue := false
    end
    else begin
      expand_level plan visited ~parallel:false f !next cand;
      let tmp = !frontier in
      frontier := !next;
      next := tmp
    end
  done;
  !result

(* --- fused modalities (Cooper–Marzullo over the packed walk) --- *)

exception Early of bool

(* Possibly(φ): walk every consistent cut, stop at the first φ-cut.
   The scratch cut handed to [holds] is reused between calls. *)
let possibly plan ?cap ?parallel ~holds () : bool option =
  let n = plan.n in
  let scratch = Array.make n 0 in
  match
    walk plan ?cap ?parallel (fun buf o ->
        Array.blit buf (o + 1) scratch 0 n;
        if holds scratch then raise_notrace (Early true))
  with
  | Exact _ -> Some false
  | At_least _ -> None
  | exception Early _ -> Some true

(* Definitely(φ): walk only ¬φ-cuts; Definitely fails iff ⊤ is reachable
   from ⊥ through ¬φ-cuts only (including the degenerate ⊥ = ⊤ case).
   φ-cuts are pruned as candidates merge into the next frontier — so the
   walk dies out early once every path is blocked — and reaching ⊤ stops
   it immediately with [Some false].  [holds] always runs on the calling
   domain, also in parallel mode. *)
let definitely plan ?(cap = default_cap) ?(parallel = false) ~holds () :
    bool option =
  let n = plan.n in
  let esz = n + 1 in
  let scratch = Array.make n 0 in
  let holds_entry buf o =
    Array.blit buf (o + 1) scratch 0 n;
    holds scratch
  in
  let frontier = ref (Ibuf.create 64) in
  let next = ref (Ibuf.create 64) in
  let cand = Ibuf.create 64 in
  seed_bottom plan !frontier;
  if holds_entry !frontier.Ibuf.a 0 then
    (* ⊥ satisfies φ: every observation starts there *)
    Some true
  else begin
    let visited = visited_create plan.total in
    ignore (visited_add visited 0);
    let count = ref 0 in
    let capped = ref false in
    (* Expand one level, keeping only ¬φ successors.  Parallel mode
       generates consistency-checked candidates on the pool, then
       dedups and filters sequentially — same frontier, same order. *)
    let expand_filtered (f : Ibuf.t) (nx : Ibuf.t) =
      Ibuf.clear nx;
      if (not parallel) || f.Ibuf.len / esz < par_threshold then begin
        let o = ref 0 in
        while !o < f.Ibuf.len do
          let src = f.Ibuf.a in
          let code = Array.unsafe_get src !o in
          for i = 0 to n - 1 do
            let ci = Array.unsafe_get src (!o + 1 + i) in
            if ci < Array.unsafe_get plan.lens i then begin
              let code' = code + Array.unsafe_get plan.stride i in
              if
                visited_add visited code'
                && extension_ok plan src !o i ci
              then begin
                append_successor plan src !o i ci code' nx;
                (* evaluate φ on the entry just appended; drop it again
                   if φ holds (the cut is a blocked path) *)
                let q = nx.Ibuf.len - esz in
                if holds_entry nx.Ibuf.a q then nx.Ibuf.len <- q
              end
            end
          done;
          o := !o + esz
        done
      end
      else begin
        Ibuf.clear cand;
        generate_parallel plan f cand;
        let p = ref 0 in
        while !p < cand.Ibuf.len do
          if
            visited_add visited (Array.unsafe_get cand.Ibuf.a !p)
            && not (holds_entry cand.Ibuf.a !p)
          then begin
            Ibuf.ensure nx esz;
            Array.blit cand.Ibuf.a !p nx.Ibuf.a nx.Ibuf.len esz;
            nx.Ibuf.len <- nx.Ibuf.len + esz
          end;
          p := !p + esz
        done
      end
    in
    match
      while !frontier.Ibuf.len > 0 && not !capped do
        let f = !frontier in
        let o = ref 0 in
        while (not !capped) && !o < f.Ibuf.len do
          if Array.unsafe_get f.Ibuf.a !o = plan.top_code then
            raise_notrace (Early false);
          incr count;
          if !count >= cap then capped := true;
          o := !o + esz
        done;
        if !capped then f.Ibuf.len <- 0
        else begin
          expand_filtered f !next;
          let tmp = !frontier in
          frontier := !next;
          next := tmp
        end
      done
    with
    | () -> if !capped then None else Some true
    | exception Early _ -> Some false
  end
