(* The lattice of consistent global states (paper §4.1, §4.2.4).

   Input: per-process sequences of vector stamps, one per event, where the
   own component of process i's k-th event equals k (1-based) — true for
   Mattern/Fidge clocks ticking on every event and for strobe vectors over
   sense events.  A cut c is consistent iff every included event's causal
   prerequisites are included:

       ∀ i with c.(i) > 0, ∀ j ≠ i:  V(e_i^{c_i})[j] <= c.(j)

   Counting walks the sublattice breadth-first from the bottom cut, which
   is sound because the consistent cuts are closed under meet/join and
   every consistent cut is reachable from bottom through consistent cuts.

   The size of the sublattice is the paper's measure of how well control
   messages approximate a single time axis: no communication at all makes
   every cut consistent (O(p^n) states); strobing at each relevant event
   with Δ = 0 collapses it to a single chain of n·p + 1 cuts ("slim
   lattice postulate").

   Two walk engines sit behind the public functions: the packed-cut
   engine ([Packed]) whenever the full lattice size fits in a tagged int
   — a cut is one immediate int under a mixed-radix encoding, the BFS
   runs allocation-free over flat int frontiers — and this file's
   generic array-cut walk as the overflow fallback and the differential
   -test oracle.  Both visit the same cuts in the same order. *)

type verdict = Packed.verdict = Exact of int | At_least of int

type stamps = int array array array
(* stamps.(i).(k): vector stamp of process i's (k+1)-th event *)

let lens (stamps : stamps) = Array.map Array.length stamps

let validate (stamps : stamps) =
  Array.iteri
    (fun i evs ->
      Array.iteri
        (fun k v ->
          if Array.length v <> Array.length stamps then
            invalid_arg "Lattice: stamp dimension mismatch";
          if v.(i) <> k + 1 then
            invalid_arg
              (Printf.sprintf
                 "Lattice: own component of event %d of process %d must be %d"
                 (k + 1) i (k + 1)))
        evs)
    stamps

let is_consistent (stamps : stamps) (cut : Cut.t) =
  let n = Array.length stamps in
  let rec proc i =
    i >= n
    ||
    let ok =
      cut.(i) = 0
      ||
      let v = stamps.(i).(cut.(i) - 1) in
      let rec comp j = j >= n || ((j = i || v.(j) <= cut.(j)) && comp (j + 1)) in
      comp 0
    in
    ok && proc (i + 1)
  in
  proc 0

(* Extending a consistent cut with one event of process i stays consistent
   iff the new event's prerequisites are inside the extended cut. *)
let extension_consistent (stamps : stamps) (cut : Cut.t) i =
  let n = Array.length stamps in
  let v = stamps.(i).(cut.(i)) in
  let rec comp j = j >= n || ((j = i || v.(j) <= cut.(j)) && comp (j + 1)) in
  comp 0

(* Walk the sublattice of consistent cuts; [visit] sees each exactly once.
   Returns the verdict on the total count under the cap.  This is the
   generic array-cut engine — [Packed] reproduces its visit order
   exactly; keep them in sync. *)
let walk ?(cap = 2_000_000) (stamps : stamps) visit =
  let l = lens stamps in
  let n = Array.length stamps in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let bottom = Cut.bottom n in
  Hashtbl.replace seen bottom ();
  Queue.add bottom queue;
  let count = ref 0 in
  let capped = ref false in
  while not (Queue.is_empty queue) do
    let cut = Queue.pop queue in
    incr count;
    visit cut;
    if !count >= cap then begin
      capped := true;
      Queue.clear queue
    end
    else
      for i = 0 to n - 1 do
        if cut.(i) < l.(i) && extension_consistent stamps cut i then begin
          let c = Array.copy cut in
          c.(i) <- c.(i) + 1;
          if not (Hashtbl.mem seen c) then begin
            Hashtbl.replace seen c ();
            Queue.add c queue
          end
        end
      done
  done;
  if !capped then At_least !count else Exact !count

(* --- generic engine, exposed as the differential-test oracle --- *)

let count_consistent_generic ?cap stamps =
  validate stamps;
  walk ?cap stamps (fun _ -> ())

let consistent_cuts_generic ?cap stamps =
  validate stamps;
  let acc = ref [] in
  let verdict = walk ?cap stamps (fun c -> acc := Cut.copy c :: !acc) in
  (List.rev !acc, verdict)

(* --- public entry points: packed when possible, generic otherwise --- *)

let count_consistent ?cap ?(parallel = false) stamps =
  validate stamps;
  match Packed.plan_of_stamps stamps with
  | Some plan -> Packed.count plan ?cap ~parallel ()
  | None -> walk ?cap stamps (fun _ -> ())

let consistent_cuts ?cap ?(parallel = false) stamps =
  validate stamps;
  match Packed.plan_of_stamps stamps with
  | Some plan -> Packed.cuts plan ?cap ~parallel ()
  | None ->
      let acc = ref [] in
      let verdict = walk ?cap stamps (fun c -> acc := Cut.copy c :: !acc) in
      (List.rev !acc, verdict)

(* Total cuts in the full (unconstrained) lattice: Π (len_i + 1). *)
let total_cuts stamps =
  Array.fold_left (fun acc evs -> acc * (Array.length evs + 1)) 1 stamps

let total_cuts_of_lens lens =
  Array.fold_left (fun acc l -> acc * (l + 1)) 1 lens

(* Whether the consistent cuts form a single chain — the Δ = 0 linear
   order of §4.2.4. *)
let is_chain_generic ?cap stamps =
  let cuts, verdict = consistent_cuts_generic ?cap stamps in
  let sorted =
    List.sort (fun a b -> compare (Cut.level a : int) (Cut.level b)) cuts
  in
  let rec pairwise = function
    | a :: (b :: _ as rest) -> Cut.leq a b && pairwise rest
    | [ _ ] | [] -> true
  in
  match verdict with Exact _ -> pairwise sorted | At_least _ -> false

let is_chain ?cap stamps =
  validate stamps;
  match Packed.plan_of_stamps stamps with
  | Some plan -> Packed.is_chain plan ?cap ()
  | None -> is_chain_generic ?cap stamps

(* --- stamp-plane executions: handles into a live arena, no copies --- *)

module Stamp_plane = Psn_clocks.Stamp_plane

let validate_plane plane (handles : Stamp_plane.handle array array) =
  let n = Array.length handles in
  if Stamp_plane.width plane <> n then
    invalid_arg "Lattice: plane width must equal the process count";
  Array.iteri
    (fun i hs ->
      Array.iteri
        (fun k h ->
          if not (Stamp_plane.is_valid plane h) then
            invalid_arg "Lattice: dead or foreign stamp handle";
          if Stamp_plane.get plane h i <> k + 1 then
            invalid_arg
              (Printf.sprintf
                 "Lattice: own component of event %d of process %d must be %d"
                 (k + 1) i (k + 1)))
        hs)
    handles

(* Materialize the copied-stamp form — the generic-walk fallback and the
   differential-test bridge between the two input representations. *)
let stamps_of_plane plane (handles : Stamp_plane.handle array array) : stamps =
  Array.map (Array.map (Stamp_plane.read plane)) handles

let count_consistent_plane ?cap ?(parallel = false) plane handles =
  validate_plane plane handles;
  match Packed.plan_of_plane plane ~handles with
  | Some plan -> Packed.count plan ?cap ~parallel ()
  | None -> walk ?cap (stamps_of_plane plane handles) (fun _ -> ())

let is_chain_plane ?cap plane handles =
  validate_plane plane handles;
  match Packed.plan_of_plane plane ~handles with
  | Some plan -> Packed.is_chain plan ?cap ()
  | None -> is_chain_generic ?cap (stamps_of_plane plane handles)

let verdict_count = function Exact n -> n | At_least n -> n

let pp_verdict ppf = function
  | Exact n -> Fmt.pf ppf "%d" n
  | At_least n -> Fmt.pf ppf ">=%d" n

(* Graphviz rendering of the consistent sublattice (small executions only:
   caps at [max_nodes] cuts).  Each node is a cut; edges are single-event
   extensions; an optional [label] annotates cuts (e.g. predicate truth). *)
let to_dot ?(max_nodes = 500) ?label stamps =
  validate stamps;
  let cuts, _ = consistent_cuts ~cap:max_nodes stamps in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph lattice {\n  rankdir=BT;\n";
  let name c =
    "\"" ^ String.concat "," (List.map string_of_int (Array.to_list c)) ^ "\""
  in
  (* Membership test for edge targets: hash the enumerated cuts once
     instead of a linear scan per candidate successor. *)
  let members = Hashtbl.create (2 * List.length cuts) in
  List.iter (fun c -> Hashtbl.replace members c ()) cuts;
  List.iter
    (fun c ->
      let extra =
        match label with
        | Some f -> (
            match f c with
            | Some s -> Printf.sprintf " [label=%s, style=filled]" ("\"" ^ s ^ "\"")
            | None -> "")
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  %s%s;\n" (name c) extra))
    cuts;
  let l = lens stamps in
  List.iter
    (fun c ->
      List.iter
        (fun (_, succ) ->
          if is_consistent stamps succ && Hashtbl.mem members succ then
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s;\n" (name c) (name succ)))
        (Cut.successors ~lens:l c))
    cuts;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
