(** Exact Cooper–Marzullo modalities over the consistent-cut lattice —
    the verification oracle for the online detectors. *)

type verdict = bool option
(** [None] = the exploration cap was hit. *)

val possibly :
  ?cap:int -> ?parallel:bool -> Lattice.stamps -> holds:(Cut.t -> bool) ->
  verdict
(** Fused into the packed walk when the execution is packable: stops at
    the first φ-cut.  The cut array handed to [holds] may be a scratch
    buffer reused between calls — copy it if it must be retained.
    [parallel] fans the consistency checks of each BFS level out over
    the domain pool ([holds] itself always runs on the calling domain);
    verdicts are identical either way. *)

val definitely :
  ?cap:int -> ?parallel:bool -> Lattice.stamps -> holds:(Cut.t -> bool) ->
  verdict
(** Fused: walks ¬φ-cuts only, stops as soon as ⊤ escapes (or every
    path is blocked).  Same scratch-buffer caveat as [possibly]. *)

val possibly_generic :
  ?cap:int -> Lattice.stamps -> holds:(Cut.t -> bool) -> verdict
(** The generic array-cut implementation (differential-test oracle). *)

val definitely_generic :
  ?cap:int -> Lattice.stamps -> holds:(Cut.t -> bool) -> verdict

val cut_env :
  init:(Psn_predicates.Expr.var * Psn_world.Value.t) list ->
  updates:(string * Psn_world.Value.t) array array -> Cut.t ->
  Psn_predicates.Expr.var -> Psn_world.Value.t option
(** Variable environment at a cut: [updates.(i)] is process i's ordered
    write sequence; falls back to [init]. *)

val holds_of_expr :
  init:(Psn_predicates.Expr.var * Psn_world.Value.t) list ->
  updates:(string * Psn_world.Value.t) array array ->
  Psn_predicates.Expr.t -> Cut.t -> bool
(** Predicate truth at a cut; unbound variables read as false. *)
