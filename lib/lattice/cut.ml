(* Global cuts of a finite execution.

   A cut is a vector c where c.(i) is the number of events of process i
   included.  Cuts under componentwise order form the lattice of global
   states (paper §4.1/§4.2.4); the consistent ones form its sublattice. *)

type t = int array

let bottom n = Array.make n 0

let top lens = Array.copy lens

let copy = Array.copy

(* Monomorphic: the polymorphic [=] walks the runtime representation
   through a C call per comparison; an int loop is branch-predictable
   and inlineable. *)
let equal (a : t) (b : t) =
  a == b
  ||
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let leq a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Cut.leq: dimension mismatch";
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let join a b =
  if Array.length a <> Array.length b then invalid_arg "Cut.join: dimension mismatch";
  Array.mapi (fun i x -> max x b.(i)) a

let meet a b =
  if Array.length a <> Array.length b then invalid_arg "Cut.meet: dimension mismatch";
  Array.mapi (fun i x -> min x b.(i)) a

(* Level of a cut in the lattice: total events included. *)
let level t = Array.fold_left ( + ) 0 t

(* Successors by including one more event, bounded by [lens]. *)
let successors ~lens t =
  let n = Array.length t in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if t.(i) < lens.(i) then begin
      let c = Array.copy t in
      c.(i) <- c.(i) + 1;
      acc := (i, c) :: !acc
    end
  done;
  !acc

let pp ppf t = Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ",") int) t
