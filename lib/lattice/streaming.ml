(* Streaming frontier lattice.

   The walk is the same level-synchronous BFS as [Packed], restarted
   nowhere: one frontier buffer holds the cuts of the highest finalized
   level, and advancing a level expands it in place into the spare
   buffer (the retired slab is reclaimed by an O(1) length reset at the
   swap).  What makes the online version sound is the commit rule:

     level L is finalized  iff  L <= min over open pids i of
                                  Σ_j (last stamp of i).(j)

   A cut containing event e dominates stamp(e) componentwise, so
   sum(cut) >= sum(stamp(e)); and a process's stamps have strictly
   increasing component sums (own tick plus monotone merges).  So a
   not-yet-observed event of pid i can only ever sit in cuts of level
   >= progress(i) + 1 — below that bound the frontier is exactly what
   the post-hoc walk over the finished prefix would build.  The
   differential tests in test/test_lattice.ml pin counts, verdicts, and
   φ-evaluation order against [Packed] on random prefixes.

   Memory, piece by piece:

     - frontier buffers: two [Ibuf]s, peak size = widest live slab
       (reported by [peak_live_cuts]);
     - event stamps: one [Stamp_plane] arena plus per-pid handle rings
       covering [base.(i) .. applied.(i) - 1], where [base] is the meet
       of the frontier (the minimum stable cut — no future consistency
       check can read below it, because extension candidates have
       components >= the frontier's componentwise min).  When the arena
       holds more than twice the live window it is reset (O(1)) and the
       live window re-allocated — amortized O(1) per event;
     - dedup map: rebuilt per expansion, sized to the next frontier.

   Packed codes are relative to [base]: radix_i = applied_i - base_i + 1
   over the live window, strides recomputed per expansion (O(n)).  When
   the radix product overflows 62 bits the code lane degrades to a hash
   of the components and the dedup map compares components on hit —
   same frontiers, same order ([overflowed] records that this
   happened). *)

module Stamp_plane = Psn_clocks.Stamp_plane

type edge =
  | Possibly_holds of int
  | Definitely_holds of int
  | Possibly_fails
  | Definitely_fails

(* Frontier entry layout: [flags; comp_0 .. comp_{n-1}] — absolute
   counts.  flags bit 0 = on a live ¬φ path from ⊥ (the Definitely
   walk's R-set), bit 1 = φ holds at this cut. *)
let flag_nphi_path = 1
let flag_phi = 2

module Ibuf = Packed.Ibuf

type t = {
  n : int;
  holds : int array -> bool;
  on_edge : edge -> unit;
  cap : int;
  (* per-pid progress *)
  applied : int array;        (* events observed *)
  progress : int array;       (* Σ components of the last stamp *)
  closed : bool array;
  mutable open_pids : int;
  (* live stamp window *)
  plane : Stamp_plane.t;
  rings : int array array;    (* pid -> handle ring, index k mod cap *)
  base : int array;           (* minimum stable cut *)
  (* frontier *)
  mutable cur : Ibuf.t;       (* committed level [level] *)
  mutable nxt : Ibuf.t;
  mutable level : int;
  (* dedup scratch, rebuilt per expansion *)
  mutable keys : int array;   (* code -> entry offset map; -1 empty *)
  mutable vals : int array;
  (* radix/stride scratch *)
  stride : int array;
  scratch : int array;        (* cut handed to [holds] *)
  (* results *)
  mutable committed : int;
  mutable possibly : bool option;
  mutable definitely : bool option;
  mutable capped : bool;
  mutable overflowed : bool;
  mutable top_nphi : bool;
      (* the last committed nonempty frontier was the top cut (all
         observed events) and it sat on a live ¬φ path — the only
         configuration that refutes Definitely at [finish] *)
  mutable events : int;
  mutable peak_live_cuts : int;
  mutable live_ev : int;
  mutable peak_live_ev : int;
}

let esz t = t.n + 1

(* --- stamp window --- *)

let ring_handle t pid k = t.rings.(pid).(k mod Array.length t.rings.(pid))

let ring_store t pid k h =
  let r = t.rings.(pid) in
  let cap = Array.length r in
  let live = t.applied.(pid) - t.base.(pid) in
  if live >= cap then begin
    (* grow: re-place live handles under the doubled modulus *)
    let ncap = 2 * cap in
    let nr = Array.make ncap (-1) in
    for j = t.base.(pid) to t.applied.(pid) - 1 do
      nr.(j mod ncap) <- r.(j mod cap)
    done;
    t.rings.(pid) <- nr;
    nr.(k mod ncap) <- h
  end
  else r.(k mod cap) <- h

(* Reclaim the arena once it holds more than twice the live window:
   copy the live handles' stamps out, reset (O(1)), re-allocate.  The
   copy is O(live window), so the amortized cost per observed event is
   O(1). *)
let compact t =
  let live = t.live_ev in
  if Stamp_plane.count t.plane > (2 * live) + 4 then begin
    let n = t.n in
    let buf = Array.make (max 1 (live * n)) 0 in
    let off = ref 0 in
    for pid = 0 to n - 1 do
      for k = t.base.(pid) to t.applied.(pid) - 1 do
        let h = ring_handle t pid k in
        for j = 0 to n - 1 do
          buf.((!off * n) + j) <- Stamp_plane.get t.plane h j
        done;
        incr off
      done
    done;
    Stamp_plane.reset t.plane;
    off := 0;
    for pid = 0 to n - 1 do
      for k = t.base.(pid) to t.applied.(pid) - 1 do
        let h = Stamp_plane.alloc t.plane in
        for j = 0 to n - 1 do
          Stamp_plane.set t.plane h j buf.((!off * n) + j)
        done;
        ring_store t pid k h;
        incr off
      done
    done
  end

(* --- dedup map --- *)

let map_ensure t entries =
  let need = ref 16 in
  while !need < 4 * entries do
    need := !need * 2
  done;
  if Array.length t.keys < !need then begin
    t.keys <- Array.make !need (-1);
    t.vals <- Array.make !need 0
  end
  else Array.fill t.keys 0 (Array.length t.keys) (-1)

let[@inline] map_start code mask = ((code * 0x2545F4914F6CDD1D) lsr 17) land mask

(* Probe for [code]; when present return the stored entry offset, else
   insert [off] and return -1.  In overflow mode codes are hashes, so a
   hit additionally compares components at the stored offset. *)
let map_find_or_add t code off ~check =
  let keys = t.keys and vals = t.vals in
  let mask = Array.length keys - 1 in
  let i = ref (map_start code mask) in
  let res = ref (-2) in
  while !res = -2 do
    let k = keys.(!i) in
    if k < 0 then begin
      keys.(!i) <- code;
      vals.(!i) <- off;
      res := -1
    end
    else if k = code && check vals.(!i) then res := vals.(!i)
    else i := (!i + 1) land mask
  done;
  !res

(* --- expansion --- *)

(* Consistency of extending the cut at [src+o] by event (i, ci): the
   event's stamp must lie componentwise inside the extended cut (own
   component excepted) — [Packed.extension_ok] over the live plane. *)
let extension_ok t (src : int array) o i ci =
  let h = ring_handle t i ci in
  let plane = t.plane in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < t.n do
    if !j <> i && Stamp_plane.get plane h !j > src.(o + 1 + !j) then ok := false;
    incr j
  done;
  !ok

(* Relative packed code of the entry at [src+o] under the current
   base/stride; meaningful only within one expansion. *)
let code_of t (src : int array) o =
  if t.overflowed then begin
    let h = ref 0x1E3779B97F4A7C15 in
    for j = 0 to t.n - 1 do
      h := (!h lxor (src.(o + 1 + j) * 0x2545F4914F6CDD1D)) * 0x100000001B3
    done;
    !h land max_int
  end
  else begin
    let c = ref 0 in
    for j = 0 to t.n - 1 do
      c := !c + ((src.(o + 1 + j) - t.base.(j)) * t.stride.(j))
    done;
    !c
  end

(* Recompute strides for the live window; engages the overflow fallback
   when Π radices would exceed a tagged int. *)
let refresh_strides t =
  if not t.overflowed then begin
    let total = ref 1 in
    let j = ref 0 in
    while !j < t.n do
      t.stride.(!j) <- !total;
      let radix = t.applied.(!j) - t.base.(!j) + 2 in
      if !total > max_int / radix then begin
        t.overflowed <- true;
        j := t.n
      end
      else begin
        total := !total * radix;
        incr j
      end
    done
  end

let entry_count t (f : Ibuf.t) = f.Ibuf.len / esz t

(* Evaluate φ at the entry just appended at offset [q] of [nx], set its
   flag bits, and fold the verdict state. *)
let seal_entry t (nx : Ibuf.t) q ~parent_nphi =
  let n = t.n in
  Array.blit nx.Ibuf.a (q + 1) t.scratch 0 n;
  let phi = t.holds t.scratch in
  let f = ref 0 in
  if phi then f := !f lor flag_phi
  else if parent_nphi then f := !f lor flag_nphi_path;
  nx.Ibuf.a.(q) <- !f;
  t.committed <- t.committed + 1;
  if phi && t.possibly = None then begin
    t.possibly <- Some true;
    t.on_edge (Possibly_holds (t.level + 1))
  end

(* Advance the frontier one level: expand [cur] (level [level]) into
   [nxt] (level [level + 1]).  The caller has checked the commit rule
   admits level + 1. *)
let expand t =
  let n = t.n in
  let esz = esz t in
  refresh_strides t;
  let f = t.cur and nx = t.nxt in
  Ibuf.clear nx;
  map_ensure t (entry_count t f * n);
  let check_off code off entry_off =
    (* overflow mode: codes are hashes, confirm by components *)
    ignore code;
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < n do
      if nx.Ibuf.a.(entry_off + 1 + !j) <> nx.Ibuf.a.(off + 1 + !j) then
        ok := false;
      incr j
    done;
    !ok
  in
  let o = ref 0 in
  while (not t.capped) && !o < f.Ibuf.len do
    let src = f.Ibuf.a in
    let parent_nphi = src.(!o) land flag_nphi_path <> 0 in
    for i = 0 to n - 1 do
      let ci = src.(!o + 1 + i) in
      if ci < t.applied.(i) && extension_ok t src !o i ci then begin
        (* stage the candidate at the end of [nx] so the dedup check can
           compare components in place *)
        Ibuf.ensure nx esz;
        let q = nx.Ibuf.len in
        let b = nx.Ibuf.a in
        Array.blit src (!o + 1) b (q + 1) n;
        b.(q + 1 + i) <- ci + 1;
        let code = code_of t b q in
        let hit =
          map_find_or_add t code q ~check:(fun off ->
              (not t.overflowed) || check_off code off q)
        in
        if hit < 0 then begin
          nx.Ibuf.len <- q + esz;
          seal_entry t nx q ~parent_nphi
        end
        else if
          (* already generated this level: OR the ¬φ-path flag through
             this parent edge (the Definitely walk must see every
             parent, not just the first) *)
          parent_nphi
          && nx.Ibuf.a.(hit) land flag_phi = 0
        then nx.Ibuf.a.(hit) <- nx.Ibuf.a.(hit) lor flag_nphi_path;
        if entry_count t nx > t.cap then t.capped <- true
      end
    done;
    o := !o + esz
  done;
  if not t.capped then begin
    (* retire the slab: O(1) reset + swap *)
    Ibuf.clear f;
    t.cur <- nx;
    t.nxt <- f;
    let entries = entry_count t t.cur in
    if entries > 0 then t.level <- t.level + 1;
    (match !Packed.frontier_probe with
    | Some probe -> if entries > 0 then probe entries
    | None -> ());
    if entries > t.peak_live_cuts then t.peak_live_cuts <- entries;
    (* A level-[events] cut contains every observed event, so it is the
       (current) top; record whether it survives on a ¬φ path.  Only
       nonempty commits update this, so after the final drain it still
       describes the last real frontier. *)
    if entries > 0 then
      t.top_nphi <-
        t.level = t.events
        && t.cur.Ibuf.a.(0) land flag_nphi_path <> 0;
    (* Definitely decided as soon as the R-set dies with cuts left *)
    if t.definitely = None && entries > 0 then begin
      let alive = ref false in
      let o = ref 0 in
      while (not !alive) && !o < t.cur.Ibuf.len do
        if t.cur.Ibuf.a.(!o) land flag_nphi_path <> 0 then alive := true;
        o := !o + esz
      done;
      if not !alive then begin
        t.definitely <- Some true;
        t.on_edge (Definitely_holds t.level)
      end
    end;
    (* advance the minimum stable cut and reclaim below it *)
    if entries > 0 then begin
      for j = 0 to n - 1 do
        t.scratch.(j) <- max_int
      done;
      let o = ref 0 in
      while !o < t.cur.Ibuf.len do
        for j = 0 to n - 1 do
          let c = t.cur.Ibuf.a.(!o + 1 + j) in
          if c < t.scratch.(j) then t.scratch.(j) <- c
        done;
        o := !o + esz
      done;
      for j = 0 to n - 1 do
        if t.scratch.(j) > t.base.(j) then t.base.(j) <- t.scratch.(j)
      done;
      t.live_ev <- 0;
      for j = 0 to n - 1 do
        t.live_ev <- t.live_ev + (t.applied.(j) - t.base.(j))
      done;
      compact t
    end
  end

(* The commit rule's bound: the lowest progress among still-open pids,
   or unbounded when every pid closed. *)
let bound t =
  if t.open_pids = 0 then max_int
  else begin
    let b = ref max_int in
    for i = 0 to t.n - 1 do
      if (not t.closed.(i)) && t.progress.(i) < !b then b := t.progress.(i)
    done;
    !b
  end

let advance t =
  let continue = ref true in
  while !continue do
    if
      t.capped
      || t.cur.Ibuf.len = 0
      || t.level + 1 > bound t
    then continue := false
    else expand t
  done

(* --- construction & feeding --- *)

let create ~n ?(cap = 1_000_000) ?(on_edge = fun _ -> ()) ~holds () =
  if n <= 0 then invalid_arg "Streaming.create: n must be positive";
  if cap <= 0 then invalid_arg "Streaming.create: cap must be positive";
  let t =
    {
      n;
      holds;
      on_edge;
      cap;
      applied = Array.make n 0;
      progress = Array.make n 0;
      closed = Array.make n false;
      open_pids = n;
      plane = Stamp_plane.create ~n ();
      rings = Array.init n (fun _ -> Array.make 8 (-1));
      base = Array.make n 0;
      cur = Ibuf.create 64;
      nxt = Ibuf.create 64;
      level = 0;
      keys = Array.make 16 (-1);
      vals = Array.make 16 0;
      stride = Array.make n 0;
      scratch = Array.make n 0;
      committed = 0;
      possibly = None;
      definitely = None;
      capped = false;
      overflowed = false;
      top_nphi = false;
      events = 0;
      peak_live_cuts = 1;
      live_ev = 0;
      peak_live_ev = 0;
    }
  in
  (* seed ⊥ as the level-0 frontier and commit it *)
  Ibuf.ensure t.cur (n + 1);
  Array.fill t.cur.Ibuf.a 0 (n + 1) 0;
  t.cur.Ibuf.len <- n + 1;
  Array.fill t.scratch 0 n 0;
  let phi = holds t.scratch in
  t.committed <- 1;
  if phi then begin
    t.cur.Ibuf.a.(0) <- flag_phi;
    t.possibly <- Some true;
    t.on_edge (Possibly_holds 0);
    t.definitely <- Some true;
    t.on_edge (Definitely_holds 0)
  end
  else begin
    t.cur.Ibuf.a.(0) <- flag_nphi_path;
    (* ⊥ is also the top of the empty execution *)
    t.top_nphi <- true
  end;
  (match !Packed.frontier_probe with Some probe -> probe 1 | None -> ());
  t

let observe t ~pid ~stamp =
  if pid < 0 || pid >= t.n then invalid_arg "Streaming.observe: pid out of range";
  if t.closed.(pid) then invalid_arg "Streaming.observe: pid is closed";
  if Array.length stamp <> t.n then
    invalid_arg "Streaming.observe: stamp width mismatch";
  if stamp.(pid) <> t.applied.(pid) + 1 then
    invalid_arg "Streaming.observe: out-of-order event (own component)";
  let sum = ref 0 in
  for j = 0 to t.n - 1 do
    sum := !sum + stamp.(j)
  done;
  if !sum <= t.progress.(pid) then
    invalid_arg "Streaming.observe: stamp sum must increase";
  let h = Stamp_plane.of_array t.plane stamp in
  ring_store t pid t.applied.(pid) h;
  t.applied.(pid) <- t.applied.(pid) + 1;
  t.progress.(pid) <- !sum;
  t.events <- t.events + 1;
  t.live_ev <- t.live_ev + 1;
  if t.live_ev > t.peak_live_ev then t.peak_live_ev <- t.live_ev;
  advance t

let close_pid t ~pid =
  if pid < 0 || pid >= t.n then
    invalid_arg "Streaming.close_pid: pid out of range";
  if not t.closed.(pid) then begin
    t.closed.(pid) <- true;
    t.open_pids <- t.open_pids - 1;
    advance t
  end

let finish t =
  for pid = 0 to t.n - 1 do
    if not t.closed.(pid) then begin
      t.closed.(pid) <- true;
      t.open_pids <- t.open_pids - 1
    end
  done;
  advance t;
  if not t.capped then begin
    (* The walk drained: settle the remaining answers.  Possibly fails
       iff no committed cut satisfied φ.  Definitely fails iff the top
       cut was reached on a live ¬φ path ([top_nphi]); when the walk
       died before the top (a causally open prefix whose ⊤ is
       inconsistent), every observation path is blocked — Definitely
       holds, matching [Packed.definitely]'s dead-frontier answer. *)
    if t.possibly = None then begin
      t.possibly <- Some false;
      t.on_edge Possibly_fails
    end;
    if t.definitely = None then
      (* [top_nphi] may be stale when events arrived after the last
         nonempty commit (their cuts never became consistent): the
         frontier it describes is the true top only if its level still
         equals the final event count. *)
      if t.top_nphi && t.level = t.events then begin
        t.definitely <- Some false;
        t.on_edge Definitely_fails
      end
      else begin
        t.definitely <- Some true;
        t.on_edge (Definitely_holds t.level)
      end
  end

(* --- accessors --- *)

let n t = t.n
let events_observed t = t.events
let committed_level t = t.level

let committed_cuts t =
  if t.capped then Packed.At_least t.committed else Packed.Exact t.committed

let possibly t = t.possibly
let definitely t = t.definitely
let base t = Array.copy t.base

let base_component t i =
  if i < 0 || i >= t.n then invalid_arg "Streaming.base_component: pid";
  t.base.(i)

let live_cuts t = entry_count t t.cur
let peak_live_cuts t = t.peak_live_cuts
let live_events t = t.live_ev
let peak_live_events t = t.peak_live_ev
let overflowed t = t.overflowed
let capped t = t.capped
