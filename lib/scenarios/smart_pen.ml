(* The smart pen of §4.1 — the paper's central story about hidden
   channels and dual-role entities.

   "When Bob gives a pen to Tom, Tom then moves to another room, and
   leaves the pen there, the physical handoff and transport of the pen
   can be detected by all the sensors/badge readers.  The causality from
   event pen@t1@l_i → event pen@t2@l_j in the world plane can be tracked
   in the network plane. ... if the pen is intelligent and not just
   embedded with a RFID tag, it is part of the network plane also."

   We build the story both ways:

   - DUMB pen: handoffs and moves are covert channels.  Room sensors
     observe the pen's appearances, stamp them with Mattern/Fidge clocks,
     but never message each other about the pen — so the recovered causal
     order over the pen's trajectory is empty.

   - SMART pen: the pen is a dual-role entity, process and object at once
     (it occupies a process slot and its handoffs are network sends), so
     the sensors' stamps recover the full trajectory order.

   [run] returns, for each mode, the fraction of consecutive trajectory
   pairs (pen seen at room_i before room_j) whose network-plane stamps
   certify the true order — the quantitative form of §4.1's "technology
   does not allow tracking of the hidden channels ... in the general
   case". *)

module Engine = Psn_sim.Engine
module Sim_time = Psn_sim.Sim_time
module Vc = Psn_clocks.Vector_clock
module World = Psn_world.World
module Value = Psn_world.Value
module Net = Psn_network.Net

type cfg = {
  rooms : int;            (* one badge-reader process per room *)
  hops : int;             (* trajectory length: handoffs/moves of the pen *)
  dwell_mean_s : float;   (* time the pen rests in a room *)
  delay : Psn_sim.Delay_model.t;
  seed : int64;
}

let default =
  {
    rooms = 4;
    hops = 12;
    dwell_mean_s = 60.0;
    delay =
      Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 10)
        ~max:(Sim_time.of_ms 100);
    seed = 37L;
  }

type result = {
  trajectory : int list;        (* rooms visited, in true order *)
  pairs : int;                  (* consecutive trajectory pairs *)
  certified : int;              (* pairs whose stamps prove the order *)
  fraction : float;
}

type mode = Dumb | Smart

let run ~mode cfg =
  if cfg.rooms < 2 then invalid_arg "Smart_pen.run: need at least two rooms";
  let engine = Engine.create ~seed:cfg.seed () in
  let rng = Engine.scenario_rng engine in
  let world = World.create engine in
  let pen = World.add_object world ~name:"pen" () in
  let pen_id = Psn_world.World_object.id pen in
  (* Process slots: one badge reader per room; the smart pen, being a
     dual-role entity, occupies an extra slot of the network plane. *)
  let n = cfg.rooms + (match mode with Smart -> 1 | Dumb -> 0) in
  let pen_proc = cfg.rooms (* valid only in Smart mode *) in
  let clocks = Array.init n (fun me -> Vc.create ~n ~me) in
  let net = Net.create ~label:"app" engine ~n ~delay:cfg.delay in
  for dst = 0 to n - 1 do
    Net.set_handler net dst (fun ~src:_ stamp ->
        ignore (Vc.receive clocks.(dst) stamp))
  done;
  (* Badge readers stamp each sighting of the pen in their room. *)
  let sightings = ref [] in
  World.subscribe world (fun change ->
      if change.World.attr = "room" then begin
        let room = Value.to_int change.World.new_value in
        let stamp = Vc.tick clocks.(room) in
        sightings := (room, change.World.time, stamp) :: !sightings
      end);
  (* The pen's trajectory. *)
  let trajectory = ref [] in
  let rec hop remaining room =
    trajectory := room :: !trajectory;
    (* The handoff/move: a covert channel.  A smart pen mirrors it in the
       network plane: its own process sends to the destination room's
       reader right as the pen arrives (the reader decodes the pen's
       radio, not just a passive tag). *)
    (match mode with
    | Smart ->
        let stamp = Vc.send clocks.(pen_proc) in
        (* The pen physically carries its state: the destination reader
           learns it at the sighting, synchronously. *)
        ignore (Vc.receive clocks.(room) stamp)
    | Dumb -> ());
    World.set_attr world pen_id "room" (Value.Int room);
    (match mode with
    | Smart ->
        (* The pen also hears the reader (two-way RFID session). *)
        let stamp = Vc.send clocks.(room) in
        ignore (Vc.receive clocks.(pen_proc) stamp)
    | Dumb -> ());
    if remaining > 0 then begin
      let dwell = Psn_util.Rng.exponential rng ~mean:cfg.dwell_mean_s in
      let next_room =
        (room + 1 + Psn_util.Rng.int rng (cfg.rooms - 1)) mod cfg.rooms
      in
      Engine.schedule_after_unit engine (Sim_time.of_sec_float dwell) (fun () ->
             hop (remaining - 1) next_room)
    end
  in
  hop cfg.hops 0;
  Engine.run engine;
  let trajectory = List.rev !trajectory in
  let sightings = List.rev !sightings in
  (* Score: consecutive sightings of the pen — does the network plane's
     causal order certify sighting k before sighting k+1? *)
  let stamps = List.map (fun (_, _, s) -> s) sightings in
  let rec score acc pairs = function
    | a :: (b :: _ as rest) ->
        score (if Vc.happened_before a b then acc + 1 else acc) (pairs + 1) rest
    | _ -> (acc, pairs)
  in
  let certified, pairs = score 0 0 stamps in
  {
    trajectory;
    pairs;
    certified;
    fraction = (if pairs = 0 then 0.0 else float_of_int certified /. float_of_int pairs);
  }
