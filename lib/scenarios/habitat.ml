(* Habitat monitoring with on-demand duty-cycle coordination (§5 last
   paragraph, after Baumgartner et al. [3]).

   Nodes sleep almost always.  When a node locally senses a rare event
   (an audio source, an animal at a waterhole), it broadcasts a wake-up
   strobe; peers that receive it while the phenomenon is still observable
   wake and co-sense it.  There is no common time base — the network
   "stays unsynchronized most of the time but collaborates shortly before
   the common event", which is precisely the strobe-clock style of
   coordination the paper advocates for slow phenomena.

   The run reports the mean fraction of nodes that co-sense each event as
   a function of the phenomenon duration vs the message delay — the
   habitat table of E-habitat (exercised in tests and the CLI; the claim
   it illustrates is §3.3's "Δ is adequate when the event rate is low"). *)

module Engine = Psn_sim.Engine
module Sim_time = Psn_sim.Sim_time
module Net = Psn_network.Net

type cfg = {
  nodes : int;
  event_rate_per_hour : float;  (* rare-event Poisson rate, whole field *)
  event_duration : Sim_time.t;  (* how long the phenomenon is observable *)
  delay : Psn_sim.Delay_model.t;
  loss : Psn_sim.Loss_model.t;
  horizon : Sim_time.t;
  seed : int64;
}

let default =
  {
    nodes = 8;
    event_rate_per_hour = 20.0;
    event_duration = Sim_time.of_ms 1500;
    delay =
      Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 20)
        ~max:(Sim_time.of_ms 200);
    loss = Psn_sim.Loss_model.no_loss;
    horizon = Sim_time.of_sec 7200;
    seed = 7L;
  }

type result = {
  events : int;
  mean_coverage : float;   (* mean fraction of nodes co-sensing an event *)
  full_coverage : int;     (* events co-sensed by every node *)
  messages : int;
  wake_time : Sim_time.t;  (* total awake time across nodes (energy proxy) *)
}

type msg = Wake of { event_id : int }

let run cfg =
  if cfg.nodes < 2 then invalid_arg "Habitat.run: need at least two nodes";
  let engine = Engine.create ~seed:cfg.seed () in
  let rng = Engine.scenario_rng engine in
  let net =
    Net.create ~loss:cfg.loss ~payload_words:(fun _ -> 1) ~label:"app" engine
      ~n:cfg.nodes ~delay:cfg.delay
  in
  let events = ref 0 in
  let coverage_sum = ref 0.0 in
  let full = ref 0 in
  let wake_time = ref Sim_time.zero in
  (* Per-event bookkeeping: expiry time and which nodes sensed it. *)
  let expiry : (int, Sim_time.t) Hashtbl.t = Hashtbl.create 64 in
  let sensed : (int, Psn_util.Bitset.t) Hashtbl.t = Hashtbl.create 64 in
  let co_sense ~node ~event_id =
    match Hashtbl.find_opt sensed event_id with
    | Some set -> Psn_util.Bitset.set set node
    | None -> ()
  in
  for dst = 0 to cfg.nodes - 1 do
    Net.set_handler net dst (fun ~src:_ (Wake { event_id }) ->
        match Hashtbl.find_opt expiry event_id with
        | Some until when Sim_time.( <= ) (Engine.now engine) until ->
            (* Wake and observe the remainder of the phenomenon. *)
            wake_time :=
              Sim_time.add !wake_time (Sim_time.sub until (Engine.now engine));
            co_sense ~node:dst ~event_id
        | Some _ | None -> ())
  done;
  (* Rare events at random nodes. *)
  let mean_gap_s = 3600.0 /. cfg.event_rate_per_hour in
  let rec schedule_next () =
    let gap = Psn_util.Rng.exponential rng ~mean:mean_gap_s in
    Engine.schedule_after_unit engine (Sim_time.of_sec_float gap) (fun () ->
           if Sim_time.( < ) (Engine.now engine) cfg.horizon then begin
             let id = !events in
             incr events;
             let origin = Psn_util.Rng.int rng cfg.nodes in
             let now = Engine.now engine in
             let until = Sim_time.add now cfg.event_duration in
             Hashtbl.replace expiry id until;
             let set = Psn_util.Bitset.create cfg.nodes in
             Psn_util.Bitset.set set origin;
             Hashtbl.replace sensed id set;
             wake_time := Sim_time.add !wake_time cfg.event_duration;
             Net.broadcast net ~src:origin (Wake { event_id = id });
             (* Tally once the phenomenon has passed. *)
             Engine.schedule_at_unit engine until (fun () ->
                    let k = Psn_util.Bitset.cardinal set in
                    coverage_sum :=
                      !coverage_sum +. (float_of_int k /. float_of_int cfg.nodes);
                    if k = cfg.nodes then incr full);
             schedule_next ()
           end)
  in
  schedule_next ();
  Engine.run ~until:cfg.horizon engine;
  {
    events = !events;
    mean_coverage = (if !events = 0 then 0.0 else !coverage_sum /. float_of_int !events);
    full_coverage = !full;
    messages = Net.sent net;
    wake_time = !wake_time;
  }
