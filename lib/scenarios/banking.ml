(* Secure banking (paper §6, after Kshemkalyani's temporal predicate
   detection with synchronized clocks [22]): "a biometric key is presented
   remotely after a password is entered across the network."

   Two processes: the password terminal (0, also the checker) and the
   biometric reader (1).  Legitimate logins present the biometric within
   [auth_window] after the password pulse; attacks present a biometric
   with no (timely) password.  The checker must raise an alarm for every
   unjustified biometric — a timing relation ("password before biometric,
   within T") that needs a common time base to decide.

   The online checker timestamps updates with ε-synchronized physical
   clocks and compares timestamps across the two sites; the oracle is the
   offline [Timed_eval] classification of the ground-truth stream.  Skew
   ε eats into the decision margin, so alarms near the window boundary
   can flip — the scenario reports exactly how many. *)

module Engine = Psn_sim.Engine
module Sim_time = Psn_sim.Sim_time
module Net = Psn_network.Net
module Expr = Psn_predicates.Expr
module Timed = Psn_predicates.Timed
module Value = Psn_world.Value
module Observation = Psn_detection.Observation
module Physical_clock = Psn_clocks.Physical_clock

type cfg = {
  sessions_per_hour : float;   (* legitimate login attempts *)
  attacks_per_hour : float;    (* biometric presentations with no password *)
  boundary_attack_prob : float;
      (* per session: probability of a replay-style attack timed just
         outside the window (the adversary that stresses the skew) *)
  password_duration : Sim_time.t;
  auth_window : Sim_time.t;    (* biometric must follow within this window *)
  legit_delay_max : Sim_time.t;(* legit biometric delay after password end *)
  eps : Sim_time.t;            (* clock synchronization skew *)
  delay : Psn_sim.Delay_model.t;
  horizon : Sim_time.t;
  seed : int64;
}

let default =
  {
    sessions_per_hour = 40.0;
    attacks_per_hour = 10.0;
    boundary_attack_prob = 0.3;
    password_duration = Sim_time.of_sec 2;
    auth_window = Sim_time.of_sec 30;
    legit_delay_max = Sim_time.of_sec 25;
    eps = Sim_time.of_ms 100;
    delay =
      Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 20)
        ~max:(Sim_time.of_ms 200);
    horizon = Sim_time.of_sec 7200;
    seed = 29L;
  }

(* The timed specification: password before biometric, within the window
   (measured from password end to biometric start). *)
let spec cfg =
  Timed.make ~name:"password-then-biometric"
    ~x:Expr.(var ~name:"password" ~loc:0 ==? bool true)
    ~y:Expr.(var ~name:"biometric" ~loc:1 ==? bool true)
    ~relation:(Timed.Before_within cfg.auth_window)

let init =
  [
    ({ Expr.name = "password"; loc = 0 }, Value.Bool false);
    ({ Expr.name = "biometric"; loc = 1 }, Value.Bool false);
  ]

type result = {
  logins : int;          (* legitimate sessions completed *)
  attacks : int;         (* unjustified biometrics injected *)
  oracle_alarms : int;   (* biometrics the offline oracle calls unjustified *)
  alarms : int;          (* alarms the online checker raised *)
  alarm_tp : int;
  alarm_fp : int;        (* legit biometric flagged (annoyed customer) *)
  alarm_fn : int;        (* attack admitted *)
  messages : int;
}

type msg = { update : Observation.update; ts : Sim_time.t }

let run cfg =
  let engine = Engine.create ~seed:cfg.seed () in
  let rng = Engine.scenario_rng engine in
  let clock_rng = Psn_util.Rng.split (Engine.rng engine) in
  let clocks =
    Array.init 2 (fun _ -> Physical_clock.synced_within clock_rng ~eps:cfg.eps)
  in
  let net = Net.create ~payload_words:(fun _ -> 3) ~label:"app" engine ~n:2 ~delay:cfg.delay in
  let seqs = Array.make 2 0 in
  let updates = ref [] in
  (* Online checker state at process 0: recent password pulse timestamps
     and the alarm log (biometric sense times, for scoring). *)
  let password_ends : Sim_time.t list ref = ref [] in
  let alarms = ref [] in
  let margin = Sim_time.add cfg.auth_window cfg.eps in
  let checker_consider (u : Observation.update) ts =
    match (u.Observation.var, u.Observation.value) with
    | "password", Value.Bool false -> password_ends := ts :: !password_ends
    | "biometric", Value.Bool true ->
        let justified =
          List.exists
            (fun pwd_end ->
              Sim_time.( <= ) pwd_end ts
              && Sim_time.( <= ) (Sim_time.sub ts pwd_end) margin)
            !password_ends
        in
        if not justified then alarms := u.Observation.sense_time :: !alarms
    | _ -> ()
  in
  Net.set_handler net 0 (fun ~src:_ (m : msg) -> checker_consider m.update m.ts);
  let emit ~src ~var value =
    let u =
      { Observation.src; var; value; seq = seqs.(src);
        sense_time = Engine.now engine }
    in
    seqs.(src) <- seqs.(src) + 1;
    updates := u :: !updates;
    let ts = Physical_clock.read clocks.(src) ~now:(Engine.now engine) in
    let m = { update = u; ts } in
    if src = 0 then checker_consider u ts else Net.send net ~src ~dst:0 m
  in
  let pulse ~src ~var ~at ~duration =
    if Sim_time.( < ) at cfg.horizon then begin
      Engine.schedule_at_unit engine at (fun () -> emit ~src ~var (Value.Bool true));
      Engine.schedule_at_unit engine (Sim_time.add at duration) (fun () ->
             emit ~src ~var (Value.Bool false))
    end
  in
  (* Legitimate sessions. *)
  let logins = ref 0 in
  let boundary_attacks = ref [] in
  let rec schedule_session t =
    let gap =
      Psn_util.Rng.exponential rng ~mean:(3600.0 /. cfg.sessions_per_hour)
    in
    let at = Sim_time.add t (Sim_time.of_sec_float gap) in
    if Sim_time.( < ) at cfg.horizon then begin
      incr logins;
      pulse ~src:0 ~var:"password" ~at ~duration:cfg.password_duration;
      let pwd_end = Sim_time.add at cfg.password_duration in
      let bio_at =
        Sim_time.add pwd_end
          (Sim_time.of_sec_float
             (Psn_util.Rng.float rng (Sim_time.to_sec_float cfg.legit_delay_max)))
      in
      pulse ~src:1 ~var:"biometric" ~at:bio_at ~duration:(Sim_time.of_sec 1);
      (* Boundary replay attack: a biometric presented just outside the
         window after this very session's password — decidable only if
         the clocks can resolve the margin. *)
      if Psn_util.Rng.unit_float rng < cfg.boundary_attack_prob then begin
        let overshoot = 1.02 +. Psn_util.Rng.float rng 0.4 in
        let atk_at =
          Sim_time.add pwd_end (Sim_time.scale cfg.auth_window overshoot)
        in
        boundary_attacks := atk_at :: !boundary_attacks;
        pulse ~src:1 ~var:"biometric" ~at:atk_at ~duration:(Sim_time.of_sec 1)
      end;
      schedule_session at
    end
  in
  schedule_session Sim_time.zero;
  (* Attacks: biometrics out of the blue. *)
  let attacks = ref 0 in
  let rec schedule_attack t =
    let gap =
      Psn_util.Rng.exponential rng ~mean:(3600.0 /. cfg.attacks_per_hour)
    in
    let at = Sim_time.add t (Sim_time.of_sec_float gap) in
    if Sim_time.( < ) at cfg.horizon then begin
      incr attacks;
      pulse ~src:1 ~var:"biometric" ~at ~duration:(Sim_time.of_sec 1);
      schedule_attack at
    end
  in
  schedule_attack Sim_time.zero;
  Engine.run ~until:cfg.horizon engine;
  (* Oracle: which biometric presentations were justified? *)
  let updates = List.rev !updates in
  let _matched, unmatched =
    Psn_detection.Timed_eval.classify_y ~init ~updates ~horizon:cfg.horizon
      (spec cfg)
  in
  let oracle_alarms = List.length unmatched in
  (* Score alarms against the oracle's unjustified set (anchor: the
     biometric rise time). *)
  let inside (iv : Psn_detection.Ground_truth.interval) t =
    Sim_time.( <= ) iv.t_start t && Sim_time.( < ) t iv.t_end
  in
  let claimed = Array.make oracle_alarms false in
  let unmatched_arr = Array.of_list unmatched in
  let tp = ref 0 and fp = ref 0 in
  List.iter
    (fun alarm_t ->
      let rec find i =
        if i >= Array.length unmatched_arr then None
        else if (not claimed.(i)) && inside unmatched_arr.(i) alarm_t then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i ->
          claimed.(i) <- true;
          incr tp
      | None -> incr fp)
    !alarms;
  {
    logins = !logins;
    attacks = !attacks + List.length !boundary_attacks;
    oracle_alarms;
    alarms = List.length !alarms;
    alarm_tp = !tp;
    alarm_fp = !fp;
    alarm_fn = oracle_alarms - !tp;
    messages = Net.sent net;
  }
