(* Shard-aware scenario workloads over the {!Psn_sim.Exec} substrate.

   Each workload is constructed once — processes partitioned into a
   fixed number of groups, every sense event pre-scheduled on its
   group's engine from per-entity RNG streams — and then executed on
   either substrate.  Construction happens entirely before [Exec.run],
   on the coordinating domain, so scheduling order (and with it the
   FIFO tie-break among equal-time events) is substrate-invariant by
   construction.  All run-time randomness (message loss, delay) flows
   through the transport's per-source streams.

   The resulting {!Psn.Report.t} goes through the same scoring pipeline
   as {!Psn.Runner.run}: ground-truth intervals from the merged update
   stream, occurrence scoring with the configured tolerance.  The
   differential suite compares these reports verbatim between the
   single-queue oracle and sharded runs. *)

module Engine = Psn_sim.Engine
module Exec = Psn_sim.Exec
module Sim_time = Psn_sim.Sim_time
module Rng = Psn_util.Rng
module Expr = Psn_predicates.Expr
module Value = Psn_world.Value
module D = Psn_detection
module Sharded_detector = Psn_detection.Sharded_detector
module Streaming_detector = Psn_detection.Streaming_detector
module Shard_net = Psn_network.Shard_net

type detect_cfg = {
  groups : int;
  eps : Sim_time.t;
  hold : Sim_time.t;
  flush_period : Sim_time.t;
  delay : Psn_sim.Delay_model.t;
  loss : Psn_sim.Loss_model.t;
  horizon : Sim_time.t;
  tolerance : Sim_time.t;
  causal_stamps : bool;
  checker : Sharded_detector.checker;
}

let default_detect =
  {
    groups = 4;
    eps = Sim_time.of_ms 10;
    hold = Sim_time.of_ms 600;
    flush_period = Sim_time.of_ms 50;
    delay =
      Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 5)
        ~max:(Sim_time.of_ms 60);
    loss = Psn_sim.Loss_model.no_loss;
    horizon = Sim_time.of_sec 600;
    tolerance = Sim_time.of_sec 2;
    causal_stamps = false;
    checker = Sharded_detector.Auto;
  }

(* Entity streams decorrelated from the transport's per-source streams
   (Shard_net mixes with a different odd constant). *)
let entity_rng seed tag =
  Rng.create
    ~seed:(Int64.add seed (Int64.mul (Int64.of_int (tag + 1)) 0xBF58476D1CE4E5B9L))
    ()

(* Build detector + world, run, score — shared by every workload. *)
let execute (dc : detect_cfg) exec ?sinks ~n ~group_of ~predicate ~init
    ~populate () =
  let cfg =
    {
      Sharded_detector.n;
      groups = dc.groups;
      group_of;
      eps = dc.eps;
      hold = dc.hold;
      flush_period = dc.flush_period;
      causal_stamps = dc.causal_stamps;
    }
  in
  let det =
    Sharded_detector.create ~loss:dc.loss ?sinks ~checker:dc.checker exec ~cfg
      ~delay:dc.delay ~predicate ()
  in
  populate det;
  Exec.run exec ~until:dc.horizon;
  let updates = Sharded_detector.updates det in
  let truth =
    D.Ground_truth.intervals ~init ~updates ~predicate ~horizon:dc.horizon ()
  in
  let occurrences = Sharded_detector.occurrences det in
  let summary =
    D.Metrics.score ~tolerance:dc.tolerance ~policy:D.Metrics.As_positive
      ~truth ~detections:occurrences ()
  in
  let net = Sharded_detector.net det in
  ( {
      Psn.Report.summary;
      truth;
      occurrences;
      updates = List.length updates;
      messages = Shard_net.sent net;
      words = Shard_net.words net;
      dropped = Shard_net.dropped net;
      sim_events = Exec.events_processed exec;
      horizon = dc.horizon;
      metrics = Exec.merged_metrics exec;
      sharding =
        (if Exec.is_sharded exec then
           Some
             {
               Psn.Report.si_windows = Exec.windows exec;
               si_per_shard = Exec.shard_snapshots exec;
             }
         else None);
    },
    det )

(* {2 Exhibition hall}

   The paper's §5 hall at shardable scale: [doors] badge sensors
   partitioned into [groups] strips of the hall, occupancy predicate
   Σ_i (x_i − y_i) > capacity.  Visitor itineraries are precomputed
   from per-visitor streams; each crossing becomes a sense event on the
   crossed door's group engine, so door counters stay group-local. *)

type hall_cfg = {
  doors : int;
  capacity : int;
  visitors : int;
  dwell_mean : float;
  detect : detect_cfg;
}

let hall_default =
  { doors = 64; capacity = 15; visitors = 128; dwell_mean = 60.0;
    detect = default_detect }

let hall_predicate cfg =
  let terms =
    List.init cfg.doors (fun i ->
        Expr.(var ~name:"x" ~loc:i -? var ~name:"y" ~loc:i))
  in
  Expr.(sum terms >? int cfg.capacity)

let hall_init cfg =
  List.concat
    (List.init cfg.doors (fun i ->
         [
           ({ Expr.name = "x"; loc = i }, Value.Int 0);
           ({ Expr.name = "y"; loc = i }, Value.Int 0);
         ]))

let hall ?(cfg = hall_default) ?sinks exec =
  if cfg.doors <= 0 then invalid_arg "Sharded.hall: doors";
  let dc = cfg.detect in
  let group_of pid = pid * dc.groups / cfg.doors in
  let seed = Exec.seed exec in
  let report, _det =
    execute dc exec ?sinks ~n:cfg.doors ~group_of
      ~predicate:(hall_predicate cfg) ~init:(hall_init cfg)
      ~populate:(fun det ->
        let xs = Array.make cfg.doors 0 and ys = Array.make cfg.doors 0 in
        for v = 0 to cfg.visitors - 1 do
          let rng = entity_rng seed v in
          let rec walk t inside =
            let dwell = Rng.exponential rng ~mean:cfg.dwell_mean in
            let t' = Sim_time.add t (Sim_time.of_sec_float dwell) in
            if Sim_time.( < ) t' dc.horizon then begin
              let door = Rng.int rng cfg.doors in
              let engine = Exec.engine exec ~group:(group_of door) in
              if inside then
                Engine.schedule_at_unit engine t' (fun () ->
                    ys.(door) <- ys.(door) + 1;
                    Sharded_detector.emit det ~src:door ~var:"y"
                      ~value:ys.(door))
              else
                Engine.schedule_at_unit engine t' (fun () ->
                    xs.(door) <- xs.(door) + 1;
                    Sharded_detector.emit det ~src:door ~var:"x"
                      ~value:xs.(door));
              walk t' (not inside)
            end
          in
          walk Sim_time.zero false
        done)
      ()
  in
  report

(* {2 Banking}

   §6's timing-relation flavor restated as a quorum predicate over
   [tellers] terminals: each terminal pulses [busy] around sessions
   drawn from its own stream; the predicate fires when at least
   [quorum] terminals are busy at once — the hall's sum with 0/1
   variables and pulse (rather than counter) dynamics, which exercises
   predicate falling edges under sharding. *)

type banking_cfg = {
  tellers : int;
  quorum : int;
  sessions_per_hour : float;
  session_mean : float; (* seconds *)
  detect : detect_cfg;
}

let banking_default =
  { tellers = 12; quorum = 4; sessions_per_hour = 180.0; session_mean = 45.0;
    detect = default_detect }

let banking_predicate cfg =
  let terms =
    List.init cfg.tellers (fun i -> Expr.(var ~name:"busy" ~loc:i))
  in
  Expr.(sum terms >=? int cfg.quorum)

let banking_init cfg =
  List.init cfg.tellers (fun i ->
      ({ Expr.name = "busy"; loc = i }, Value.Int 0))

let banking ?(cfg = banking_default) ?sinks exec =
  if cfg.tellers <= 0 then invalid_arg "Sharded.banking: tellers";
  let dc = cfg.detect in
  let group_of pid = pid * dc.groups / cfg.tellers in
  let seed = Exec.seed exec in
  let report, _det =
    execute dc exec ?sinks ~n:cfg.tellers ~group_of
      ~predicate:(banking_predicate cfg) ~init:(banking_init cfg)
      ~populate:(fun det ->
        for teller = 0 to cfg.tellers - 1 do
          let rng = entity_rng seed teller in
          let engine = Exec.engine exec ~group:(group_of teller) in
          let rec sessions t =
            let gap =
              Rng.exponential rng ~mean:(3600.0 /. cfg.sessions_per_hour)
            in
            let start = Sim_time.add t (Sim_time.of_sec_float gap) in
            let len = Rng.exponential rng ~mean:cfg.session_mean in
            let stop = Sim_time.add start (Sim_time.of_sec_float len) in
            if Sim_time.( < ) start dc.horizon then begin
              Engine.schedule_at_unit engine start (fun () ->
                  Sharded_detector.emit det ~src:teller ~var:"busy" ~value:1);
              if Sim_time.( < ) stop dc.horizon then
                Engine.schedule_at_unit engine stop (fun () ->
                    Sharded_detector.emit det ~src:teller ~var:"busy" ~value:0);
              sessions stop
            end
          in
          sessions Sim_time.zero
        done)
      ()
  in
  report

(* {2 Hospital}

   Ward monitors sampling a bounded vital-sign random walk on per-ward
   periods; the alarm predicate is an elevated ward-average — a
   relational predicate whose every update moves the sum, stressing the
   checker's apply path harder than the pulse workloads. *)

type hospital_cfg = {
  wards : int;
  sample_period : float; (* mean seconds between samples *)
  threshold : int;       (* alarm when Σ vitals > wards * threshold *)
  detect : detect_cfg;
}

let hospital_default =
  { wards = 16; sample_period = 5.0; threshold = 110; detect = default_detect }

let hospital_predicate cfg =
  let terms =
    List.init cfg.wards (fun i -> Expr.(var ~name:"vital" ~loc:i))
  in
  Expr.(sum terms >? int (cfg.wards * cfg.threshold))

let hospital_init cfg =
  List.init cfg.wards (fun i ->
      ({ Expr.name = "vital"; loc = i }, Value.Int 100))

(* {2 Calm}

   The conjunctive counterpart of the relational workloads: [monitors]
   processes each random-walk a load value with downward drift and
   occasional spikes, and the predicate is ∧_i (load_i <= limit) — a
   rising edge means "every monitor calm again".  Because the predicate
   decomposes into per-source conjuncts, the [Auto] checker runs it on
   the partitioned backend (per-group compiled residuals, verdict edges,
   combining tree); the workload exists to drive that path through the
   differential and cross-backend suites. *)

type calm_cfg = {
  monitors : int;
  limit : int;
  sample_period : float; (* mean seconds between samples *)
  detect : detect_cfg;
}

let calm_default =
  { monitors = 12; limit = 60; sample_period = 5.0; detect = default_detect }

let calm_predicate cfg =
  let terms =
    List.init cfg.monitors (fun i ->
        Expr.(var ~name:"load" ~loc:i <=? int cfg.limit))
  in
  match terms with
  | [] -> invalid_arg "Sharded.calm_predicate: monitors"
  | first :: rest -> List.fold_left Expr.( &&& ) first rest

let calm_init cfg =
  List.init cfg.monitors (fun i ->
      ({ Expr.name = "load"; loc = i }, Value.Int 80))

let calm ?(cfg = calm_default) ?sinks exec =
  if cfg.monitors <= 0 then invalid_arg "Sharded.calm: monitors";
  let dc = cfg.detect in
  let group_of pid = pid * dc.groups / cfg.monitors in
  let seed = Exec.seed exec in
  let report, _det =
    execute dc exec ?sinks ~n:cfg.monitors ~group_of
      ~predicate:(calm_predicate cfg) ~init:(calm_init cfg)
      ~populate:(fun det ->
        for m = 0 to cfg.monitors - 1 do
          let rng = entity_rng seed m in
          let engine = Exec.engine exec ~group:(group_of m) in
          let load = ref 80 in
          let rec samples t =
            let gap = Rng.exponential rng ~mean:cfg.sample_period in
            let at = Sim_time.add t (Sim_time.of_sec_float gap) in
            if Sim_time.( < ) at dc.horizon then begin
              Engine.schedule_at_unit engine at (fun () ->
                  (* Downward-drifting walk (step in -6 .. +4) with rare
                     spikes, so the all-calm conjunction keeps flipping:
                     drift pulls every monitor under [limit], a spike
                     breaks one conjunct, the drift repairs it. *)
                  let spiked = Rng.int rng 25 = 0 in
                  load :=
                    (if spiked then 70 + Rng.int rng 30
                     else
                       let step = Rng.int rng 11 - 6 in
                       Stdlib.max 0 (Stdlib.min 100 (!load + step)));
                  Sharded_detector.emit det ~src:m ~var:"load" ~value:!load);
              samples at
            end
          in
          samples Sim_time.zero
        done)
      ()
  in
  report

(* {2 Streamed modal detection}

   The calm walk again, but scored through the streaming frontier
   lattice instead of the hold-back consensus checker: every sample
   strobes a vector stamp, the checker feeds the walk online, and the
   run yields Possibly/Definitely verdicts with the slab-occupancy
   evidence.  Kept to a handful of monitors — the cut lattice is
   exponential in concurrency, and this workload exists to pin
   bounded-slab behaviour and substrate invariance, not scale in n. *)

type stream_cfg = {
  s_monitors : int;
  s_limit : int;
  s_sample_period : float; (* mean seconds between samples *)
  s_cap : int;             (* live-slab width bound *)
  s_detect : detect_cfg;
}

let stream_default =
  {
    s_monitors = 3;
    s_limit = 60;
    s_sample_period = 5.0;
    s_cap = 200_000;
    s_detect =
      { default_detect with groups = 2; horizon = Sim_time.of_sec 120 };
  }

let stream_predicate cfg =
  let terms =
    List.init cfg.s_monitors (fun i ->
        Expr.(var ~name:"load" ~loc:i <=? int cfg.s_limit))
  in
  match terms with
  | [] -> invalid_arg "Sharded.stream_predicate: monitors"
  | first :: rest -> List.fold_left Expr.( &&& ) first rest

type stream_result = {
  sr_possibly : bool option;
  sr_definitely : bool option;
  sr_committed : Psn_lattice.Packed.verdict;
  sr_observed : int;
  sr_updates : int;
  sr_edges : Streaming_detector.edge list;
  sr_peak_live_cuts : int;
  sr_peak_live_events : int;
  sr_messages : int;
  sr_dropped : int;
}

let stream ?(cfg = stream_default) ?sinks ?arena ?on_observe exec =
  if cfg.s_monitors <= 0 then invalid_arg "Sharded.stream: monitors";
  let dc = cfg.s_detect in
  let group_of pid = pid * dc.groups / cfg.s_monitors in
  let seed = Exec.seed exec in
  let dcfg =
    {
      Streaming_detector.n = cfg.s_monitors;
      groups = dc.groups;
      group_of;
      eps = dc.eps;
      hold = dc.hold;
      flush_period = dc.flush_period;
      cap = cfg.s_cap;
    }
  in
  let det =
    Streaming_detector.create ~loss:dc.loss ?sinks ?arena ?on_observe exec
      ~cfg:dcfg ~delay:dc.delay ~predicate:(stream_predicate cfg) ()
  in
  for m = 0 to cfg.s_monitors - 1 do
    let rng = entity_rng seed m in
    let engine = Exec.engine exec ~group:(group_of m) in
    let load = ref 80 in
    let rec samples t =
      let gap = Rng.exponential rng ~mean:cfg.s_sample_period in
      let at = Sim_time.add t (Sim_time.of_sec_float gap) in
      if Sim_time.( < ) at dc.horizon then begin
        Engine.schedule_at_unit engine at (fun () ->
            let spiked = Rng.int rng 25 = 0 in
            load :=
              (if spiked then 70 + Rng.int rng 30
               else
                 let step = Rng.int rng 11 - 6 in
                 Stdlib.max 0 (Stdlib.min 100 (!load + step)));
            Streaming_detector.emit det ~src:m ~var:"load" ~value:!load);
        samples at
      end
    in
    samples Sim_time.zero
  done;
  Exec.run exec ~until:dc.horizon;
  Streaming_detector.finish det;
  let s = Streaming_detector.stream det in
  let net = Streaming_detector.net det in
  ( {
      sr_possibly = Psn_lattice.Streaming.possibly s;
      sr_definitely = Psn_lattice.Streaming.definitely s;
      sr_committed = Psn_lattice.Streaming.committed_cuts s;
      sr_observed = Psn_lattice.Streaming.events_observed s;
      sr_updates = List.length (Streaming_detector.updates det);
      sr_edges = Streaming_detector.edges det;
      sr_peak_live_cuts = Psn_lattice.Streaming.peak_live_cuts s;
      sr_peak_live_events = Psn_lattice.Streaming.peak_live_events s;
      sr_messages = Shard_net.sent net;
      sr_dropped = Shard_net.dropped net;
    },
    det )

let hospital ?(cfg = hospital_default) ?sinks exec =
  if cfg.wards <= 0 then invalid_arg "Sharded.hospital: wards";
  let dc = cfg.detect in
  let group_of pid = pid * dc.groups / cfg.wards in
  let seed = Exec.seed exec in
  let report, _det =
    execute dc exec ?sinks ~n:cfg.wards ~group_of
      ~predicate:(hospital_predicate cfg) ~init:(hospital_init cfg)
      ~populate:(fun det ->
        for ward = 0 to cfg.wards - 1 do
          let rng = entity_rng seed ward in
          let engine = Exec.engine exec ~group:(group_of ward) in
          let vital = ref 100 in
          let rec samples t =
            let gap = Rng.exponential rng ~mean:cfg.sample_period in
            let at = Sim_time.add t (Sim_time.of_sec_float gap) in
            if Sim_time.( < ) at dc.horizon then begin
              Engine.schedule_at_unit engine at (fun () ->
                  let step = Rng.int rng 11 - 5 in
                  vital := Stdlib.max 50 (Stdlib.min 160 (!vital + step));
                  Sharded_detector.emit det ~src:ward ~var:"vital"
                    ~value:!vital);
              samples at
            end
          in
          samples Sim_time.zero
        done)
      ()
  in
  report
