(** Shard-aware scenario workloads over {!Psn_sim.Exec}.

    Substrate-invariant restatements of the exhibition hall, banking,
    and hospital scenarios: processes are partitioned into a fixed
    number of groups, every sense event is pre-scheduled on its group's
    engine from per-entity RNG streams, and detection runs on the
    {!Psn_detection.Sharded_detector} hold-back checker.  Running the
    same configuration and seed on {!Psn_sim.Exec.single} and on
    {!Psn_sim.Exec.sharded} with any shard count must produce equal
    reports — the property the differential suite checks.

    Each run function scores through the same pipeline as
    {!Psn.Runner.run} (ground-truth intervals over the merged update
    stream, tolerance-scored occurrences) and fills every
    {!Psn.Report.t} field, including merged metrics and transport
    costs. *)

type detect_cfg = {
  groups : int;              (** fixed partition, independent of shard count *)
  eps : Psn_sim.Sim_time.t;  (** physical clock sync bound *)
  hold : Psn_sim.Sim_time.t; (** checker hold-back *)
  flush_period : Psn_sim.Sim_time.t;
  delay : Psn_sim.Delay_model.t;
  loss : Psn_sim.Loss_model.t;
  horizon : Psn_sim.Sim_time.t;
  tolerance : Psn_sim.Sim_time.t; (** scoring tolerance *)
  causal_stamps : bool;      (** per-group stamp planes + causal frontier *)
  checker : Psn_detection.Sharded_detector.checker;
      (** predicate-evaluation backend; [Auto] in {!default_detect} *)
}

val default_detect : detect_cfg

(** {2 Exhibition hall} — [doors] badge sensors in group strips,
    occupancy predicate Σ (xᵢ − yᵢ) > capacity, visitors walking on
    precomputed itineraries.  The headline scaling workload at
    [doors >= 1000]. *)

type hall_cfg = {
  doors : int;
  capacity : int;
  visitors : int;
  dwell_mean : float; (** mean seconds per stay, each side of the doors *)
  detect : detect_cfg;
}

val hall_default : hall_cfg
val hall_predicate : hall_cfg -> Psn_predicates.Expr.t

val hall :
  ?cfg:hall_cfg -> ?sinks:Psn_obs.Trace.sink array -> Psn_sim.Exec.t ->
  Psn.Report.t

(** {2 Banking} — teller terminals pulsing [busy] around sessions;
    alarm when at least [quorum] are busy at once. *)

type banking_cfg = {
  tellers : int;
  quorum : int;
  sessions_per_hour : float;
  session_mean : float;
  detect : detect_cfg;
}

val banking_default : banking_cfg

val banking :
  ?cfg:banking_cfg -> ?sinks:Psn_obs.Trace.sink array -> Psn_sim.Exec.t ->
  Psn.Report.t

(** {2 Calm} — the conjunctive workload: monitors random-walk a load
    value (downward drift, rare spikes) and the predicate is
    ∧ᵢ (loadᵢ <= limit), so [Auto] resolves to the partitioned
    checker (per-group compiled residuals + verdict-edge combining
    tree).  A rising edge is "every monitor calm again". *)

type calm_cfg = {
  monitors : int;
  limit : int;
  sample_period : float;
  detect : detect_cfg;
}

val calm_default : calm_cfg
val calm_predicate : calm_cfg -> Psn_predicates.Expr.t

val calm :
  ?cfg:calm_cfg -> ?sinks:Psn_obs.Trace.sink array -> Psn_sim.Exec.t ->
  Psn.Report.t

(** {2 Streamed modal detection} — the calm walk scored through the
    streaming frontier lattice ({!Psn_detection.Streaming_detector})
    instead of the hold-back consensus checker: online
    Possibly/Definitely verdicts plus the slab-occupancy evidence.
    Monitor counts stay small (the cut lattice is exponential in
    concurrency); same-seed runs are substrate-invariant across
    {!Psn_sim.Exec.single} and any shard count. *)

type stream_cfg = {
  s_monitors : int;
  s_limit : int;
  s_sample_period : float;
  s_cap : int;  (** live-slab width bound handed to the walk *)
  s_detect : detect_cfg;
}

val stream_default : stream_cfg
val stream_predicate : stream_cfg -> Psn_predicates.Expr.t

type stream_result = {
  sr_possibly : bool option;
  sr_definitely : bool option;
  sr_committed : Psn_lattice.Packed.verdict;
  sr_observed : int;
  sr_updates : int;
  sr_edges : Psn_detection.Streaming_detector.edge list;
  sr_peak_live_cuts : int;
  sr_peak_live_events : int;
  sr_messages : int;
  sr_dropped : int;
}

val stream :
  ?cfg:stream_cfg ->
  ?sinks:Psn_obs.Trace.sink array ->
  ?arena:Psn_detection.Detector_arena.t ->
  ?on_observe:(pid:int -> stamp:int array -> unit) ->
  Psn_sim.Exec.t ->
  stream_result * Psn_detection.Streaming_detector.t
(** Runs to the horizon, finishes the walk, and returns the verdicts,
    counts, edges, and occupancy evidence alongside the detector (for
    the walk, transport, and merged-trace accessors). *)

(** {2 Hospital} — ward monitors sampling a bounded vital-sign walk;
    alarm when the ward average is elevated. *)

type hospital_cfg = {
  wards : int;
  sample_period : float;
  threshold : int;
  detect : detect_cfg;
}

val hospital_default : hospital_cfg

val hospital :
  ?cfg:hospital_cfg -> ?sinks:Psn_obs.Trace.sink array -> Psn_sim.Exec.t ->
  Psn.Report.t
