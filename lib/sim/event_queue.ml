(* Monomorphic event queue: a 4-ary min-heap purpose-built for the
   discrete-event engine.

   The generic [Psn_util.Heap] pays for its polymorphism on every
   operation: an indirect call through a comparator closure per
   comparison, boxed elements carrying their own key fields, and a
   [Some]/[None] allocation per pop.  Here the key is the pair
   (time in ns, insertion sequence) held in two flat immediate-[int]
   planes parallel to the payloads, so a comparison is two inlined
   integer compares with no memory indirection beyond the key planes
   themselves.  Pops are split into [is_empty]/[min_time_ns]/[pop_exn]
   so the drain loop never allocates an option.

   Payloads are not stored in heap order.  A third int plane, [slots],
   maps heap position to a stable index in the [payloads] arena, and the
   sifts permute (time, seq, slot) triples — all immediates, so
   reheapification never touches the payload array and never pays the GC
   write barrier ([caml_modify] was ~20% of a drain-loop profile with
   payloads sifted directly).  The only payload writes are one store on
   [add] and one [dummy] store on [pop_exn].  [slots] is kept a
   permutation of [0 .. capacity-1]: a pop swaps the freed arena index
   out to the heap position being vacated, so the slot for the next add
   is always found at [slots.(len)].

   The sequence plane is the FIFO tie-break: equal times pop in
   insertion order, which is what keeps simulations deterministic.  The
   payload slot vacated by a pop (and every slot dropped by [clear]) is
   overwritten with [dummy] so fired closures are not retained — the
   space leak the generic heap's [pop] had.

   Why 4-ary: sift-down dominates a DES queue (every pop sifts a tail
   element down from the root), and a 4-ary heap does ⌈log₄ n⌉ levels of
   4 key compares against ⌈log₂ n⌉ levels of 2 — the same compare count
   but half the dependent cache lines, and the 4 children of node i sit
   adjacent at indices 4i+1..4i+4 in the same plane.  Keys being bare
   ints, the extra compares per level are branch-predictable ALU work,
   not pointer chasing. *)

type 'a t = {
  mutable times : int array;    (* key plane: event time, ns *)
  mutable seqs : int array;     (* key plane: insertion sequence (FIFO ties) *)
  mutable slots : int array;    (* heap position -> arena index *)
  mutable payloads : 'a array;  (* arena, addressed through [slots] *)
  mutable len : int;
  mutable next_seq : int;
  dummy : 'a;                   (* fills vacated payload slots *)
}

let identity_from arr lo =
  for i = lo to Array.length arr - 1 do
    Array.unsafe_set arr i i
  done

let create ?(capacity = 16) ~dummy () =
  let capacity = if capacity < 1 then 1 else capacity in
  let slots = Array.make capacity 0 in
  identity_from slots 0;
  {
    times = Array.make capacity 0;
    seqs = Array.make capacity 0;
    slots;
    payloads = Array.make capacity dummy;
    len = 0;
    next_seq = 0;
    dummy;
  }

let length q = q.len
let is_empty q = q.len = 0

let grow q =
  let cap = Array.length q.times in
  let cap' = 2 * cap in
  let times = Array.make cap' 0 in
  let seqs = Array.make cap' 0 in
  let slots = Array.make cap' 0 in
  let payloads = Array.make cap' q.dummy in
  Array.blit q.times 0 times 0 q.len;
  Array.blit q.seqs 0 seqs 0 q.len;
  (* The old [slots] is a permutation of the old capacity range, so the
     whole array is copied (freed arena indices parked beyond [len] must
     survive); positions cap..cap'-1 get the identity mapping. *)
  Array.blit q.slots 0 slots 0 cap;
  identity_from slots cap;
  Array.blit q.payloads 0 payloads 0 cap;
  q.times <- times;
  q.seqs <- seqs;
  q.slots <- slots;
  q.payloads <- payloads

(* Hole-based sifts: the moving (time, seq, slot) triple rides in locals
   while parent or min-child triples shift into the hole — one store per
   plane per level, all immediates.  Indices are in-bounds by the heap
   invariants, so the accessors are unsafe — this is the innermost loop
   of every simulation.  [i - 1 >= 0] throughout, so parent is [lsr 2]. *)

let sift_up q i0 =
  let times = q.times and seqs = q.seqs and slots = q.slots in
  let t = Array.unsafe_get times i0 and s = Array.unsafe_get seqs i0 in
  let sl = Array.unsafe_get slots i0 in
  let i = ref i0 in
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let tp = Array.unsafe_get times parent in
    if t < tp || (t = tp && s < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i tp;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set slots !i (Array.unsafe_get slots parent);
      i := parent
    end
    else stop := true
  done;
  if !i <> i0 then begin
    Array.unsafe_set times !i t;
    Array.unsafe_set seqs !i s;
    Array.unsafe_set slots !i sl
  end

let sift_down q i0 =
  let len = q.len in
  let times = q.times and seqs = q.seqs and slots = q.slots in
  let t = Array.unsafe_get times i0 and s = Array.unsafe_get seqs i0 in
  let sl = Array.unsafe_get slots i0 in
  let i = ref i0 in
  let stop = ref false in
  while not !stop do
    let first = (!i lsl 2) + 1 in
    if first >= len then stop := true
    else begin
      let last = first + 3 in
      let last = if last < len then last else len - 1 in
      (* Min child's key is cached in locals so each candidate costs one
         or two loads, not a re-read per comparison. *)
      let m = ref first in
      let mt = ref (Array.unsafe_get times first) in
      let ms = ref (Array.unsafe_get seqs first) in
      for c = first + 1 to last do
        let tc = Array.unsafe_get times c in
        if tc < !mt || (tc = !mt && Array.unsafe_get seqs c < !ms) then begin
          m := c;
          mt := tc;
          ms := Array.unsafe_get seqs c
        end
      done;
      if !mt < t || (!mt = t && !ms < s) then begin
        Array.unsafe_set times !i !mt;
        Array.unsafe_set seqs !i !ms;
        Array.unsafe_set slots !i (Array.unsafe_get slots !m);
        i := !m
      end
      else stop := true
    end
  done;
  if !i <> i0 then begin
    Array.unsafe_set times !i t;
    Array.unsafe_set seqs !i s;
    Array.unsafe_set slots !i sl
  end

let add q ~time_ns payload =
  if q.len = Array.length q.times then grow q;
  let i = q.len in
  (* [slots.(i)] already names a free arena index (permutation
     invariant). *)
  let sl = Array.unsafe_get q.slots i in
  Array.unsafe_set q.times i time_ns;
  Array.unsafe_set q.seqs i q.next_seq;
  Array.unsafe_set q.payloads sl payload;
  q.next_seq <- q.next_seq + 1;
  q.len <- i + 1;
  sift_up q i

let min_time_ns q =
  if q.len = 0 then invalid_arg "Event_queue.min_time_ns: empty";
  Array.unsafe_get q.times 0

let pop_exn q =
  if q.len = 0 then invalid_arg "Event_queue.pop_exn: empty";
  let sl = Array.unsafe_get q.slots 0 in
  let top = Array.unsafe_get q.payloads sl in
  Array.unsafe_set q.payloads sl q.dummy;
  let n = q.len - 1 in
  q.len <- n;
  if n > 0 then begin
    Array.unsafe_set q.times 0 (Array.unsafe_get q.times n);
    Array.unsafe_set q.seqs 0 (Array.unsafe_get q.seqs n);
    Array.unsafe_set q.slots 0 (Array.unsafe_get q.slots n);
    (* Park the freed arena index at the vacated heap position, keeping
       [slots] a permutation. *)
    Array.unsafe_set q.slots n sl
  end;
  if n > 1 then sift_down q 0;
  top

let clear q =
  for i = 0 to q.len - 1 do
    q.payloads.(q.slots.(i)) <- q.dummy
  done;
  q.len <- 0;
  q.next_seq <- 0
