(** Execution substrate: one workload construction, two engines.

    A shard-aware workload is written once against this interface —
    processes grouped into {e groups}, flat-lane message posts, a global
    delivery handler — and then runs either on a single-queue
    {!Engine.t} (the differential oracle) or on a
    {!Sharded_engine.t} with K shards (groups are mapped onto shards as
    [group mod K]).  Because the construction, the per-entity RNG
    streams, and the delivery times are substrate-independent, a
    same-seed run must produce the same observable results on both —
    the correctness contract the qcheck differential suite enforces.

    Groups exist so the workload's structure does not depend on K: a
    scenario partitions itself into a fixed number of groups (strips of
    a hall, wards of a hospital), and every group's mutable state is
    only ever touched by processes of that group — which the mapping
    places on one shard, making intra-window execution race-free. *)

type t

type handler = Sharded_engine.handler

val single : ?seed:int64 -> unit -> t
(** The single-queue oracle.  Its engine is created with
    [~use_default_obs:false], matching the shards, so substrate choice
    cannot change observability. *)

val sharded : ?seed:int64 -> shards:int -> lookahead:Sim_time.t -> unit -> t
(** Raises like {!Sharded_engine.create} (in particular on
    [lookahead <= 0]). *)

val seed : t -> int64
val shards : t -> int
(** 1 for {!single}. *)

val is_sharded : t -> bool

val lookahead : t -> Sim_time.t
(** The sharded engine's conservative-window bound; {!Sim_time.zero} on
    the single substrate (one queue needs no promise).  Workloads that
    post protocol messages themselves (e.g. the sharded checker's
    verdict edges) must keep every cross-group post at least this far
    ahead of the posting event. *)

val engine : t -> group:int -> Engine.t
(** The engine that owns [group]'s processes: the one engine for
    {!single}, shard [group mod K] for {!sharded}.  Group-local setup
    (worlds, clocks, periodic events) must schedule here. *)

val set_handler : t -> handler -> unit
(** Install the global delivery dispatcher (same callback on every
    shard).  It runs on the destination group's domain. *)

val post :
  t -> src_group:int -> dst_group:int -> at:Sim_time.t -> dst:int ->
  w0:int -> w1:int -> w2:int -> w3:int -> w4:int -> w5:int -> w6:int -> unit
(** Deliver lanes to process [dst] at absolute time [at].  On the
    single substrate this schedules directly (through a pooled delivery
    record, like the sharded path), preserving the cost model. *)

val run : t -> until:Sim_time.t -> unit

val events_processed : t -> int
val windows : t -> int
(** Barrier rounds; 0 on the single substrate. *)

val merged_metrics : t -> Psn_obs.Metrics.snapshot
(** Registry snapshot of the run: the one registry for {!single},
    {!Psn_obs.Metrics.merge_snapshots} of the shard registries for
    {!sharded}.  Sharded layers register only counters and histograms,
    so the two agree. *)

val stats : t -> Psn_obs.Shard_stats.t option
(** The sharded engine's per-window observability counters
    ({!Sharded_engine.stats}); [None] on the single substrate, which
    has no windows or barriers to attribute. *)

val shard_snapshots : t -> Psn_obs.Metrics.snapshot array
(** Per-shard registry snapshots (a one-element array for {!single}) —
    the un-merged view behind {!merged_metrics}, for per-shard
    breakdowns in reports. *)
