(* Discrete-event simulation core.

   Events are closures keyed by (time, sequence number); the sequence
   number makes simultaneous events fire in scheduling order, which keeps
   runs fully deterministic.  Cancellation is lazy: a cancelled handle's
   closure is skipped when popped.

   Observability: the engine owns the run's metrics registry and an
   optional trace sink (picked up from [Psn_obs.Trace.default] at
   creation, so a CLI flag enables tracing without threading a value
   through every constructor).  With no sink installed the hooks cost one
   branch per event. *)

module Trace = Psn_obs.Trace
module Metrics = Psn_obs.Metrics

type handle = { mutable cancelled : bool; owner : t }

and scheduled = {
  time : Sim_time.t;
  s_seq : int;
  action : unit -> unit;
  h : handle;
}

and t = {
  mutable now : Sim_time.t;
  mutable seq : int;
  mutable processed : int;
  queue : scheduled Psn_util.Heap.t;
  rng : Psn_util.Rng.t;
  aux_rng : Psn_util.Rng.t;
      (* independent stream for scenario/world randomness, so protocol
         construction (which draws from [rng]) cannot perturb the world:
         the same seed gives the same world under every clock kind *)
  mutable tracer : Trace.sink option;
  metrics : Metrics.t;
  c_scheduled : Metrics.counter;
  c_fired : Metrics.counter;
  c_cancelled : Metrics.counter;
}

let compare_scheduled a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c else Stdlib.compare a.s_seq b.s_seq

let create ?(seed = 42L) ?tracer () =
  let metrics = Metrics.create () in
  {
    now = Sim_time.zero;
    seq = 0;
    processed = 0;
    queue = Psn_util.Heap.create ~cmp:compare_scheduled ();
    rng = Psn_util.Rng.create ~seed ();
    aux_rng = Psn_util.Rng.create ~seed:(Int64.add seed 0x5DEECE66DL) ();
    tracer = (match tracer with Some _ as s -> s | None -> Trace.default ());
    metrics;
    c_scheduled = Metrics.counter metrics "engine.scheduled";
    c_fired = Metrics.counter metrics "engine.fired";
    c_cancelled = Metrics.counter metrics "engine.cancelled";
  }

let now t = t.now
let rng t = t.rng
let scenario_rng t = t.aux_rng
let events_processed t = t.processed
let pending t = Psn_util.Heap.length t.queue

let tracer t = t.tracer
let set_tracer t s = t.tracer <- s
let metrics t = t.metrics

let schedule_at t time action =
  if Sim_time.(time < t.now) then
    invalid_arg "Engine.schedule_at: time is in the past";
  let h = { cancelled = false; owner = t } in
  t.seq <- t.seq + 1;
  Metrics.incr t.c_scheduled;
  (match t.tracer with
  | Some s ->
      Trace.emit s ~time:t.now ~pid:Trace.engine_pid
        (Trace.Engine_schedule { at = time })
  | None -> ());
  Psn_util.Heap.add t.queue { time; s_seq = t.seq; action; h };
  h

let schedule_after t delay action =
  if Sim_time.is_negative delay then
    invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (Sim_time.add t.now delay) action

let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    Metrics.incr h.owner.c_cancelled;
    match h.owner.tracer with
    | Some s ->
        Trace.emit s ~time:h.owner.now ~pid:Trace.engine_pid Trace.Engine_cancel
    | None -> ()
  end

let cancelled h = h.cancelled

(* Run one event; [false] when the queue is empty. *)
let step t =
  match Psn_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.now <- ev.time;
      if not ev.h.cancelled then begin
        t.processed <- t.processed + 1;
        Metrics.incr t.c_fired;
        (match t.tracer with
        | Some s -> Trace.emit s ~time:t.now ~pid:Trace.engine_pid Trace.Engine_fire
        | None -> ());
        ev.action ()
      end;
      true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match Psn_util.Heap.peek t.queue with
        | None -> false
        | Some ev -> Sim_time.(ev.time <= limit))
  in
  while (not (Psn_util.Heap.is_empty t.queue)) && continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when Sim_time.(t.now < limit) ->
      (* Advance the clock to the horizon so observers agree on the final
         time; any still-pending events are strictly beyond it, so the
         clock invariant is preserved. *)
      t.now <- limit
  | _ -> ()

(* Schedule [action] every [period] until it returns [false] or [until]
   (when given) is passed.  Returns a handle cancelling future firings. *)
let schedule_periodic ?until t ~start ~period action =
  if Sim_time.(period <= Sim_time.zero) then
    invalid_arg "Engine.schedule_periodic: period must be positive";
  let master = { cancelled = false; owner = t } in
  let rec fire () =
    if not master.cancelled then begin
      let keep_going = action () in
      let next = Sim_time.add t.now period in
      let within_horizon =
        match until with None -> true | Some limit -> Sim_time.(next <= limit)
      in
      if keep_going && within_horizon then ignore (schedule_at t next fire)
    end
  in
  let within_horizon =
    match until with None -> true | Some limit -> Sim_time.(start <= limit)
  in
  if within_horizon then ignore (schedule_at t start fire);
  master
