(* Discrete-event simulation core.

   Events are closures keyed by (time, sequence number); the sequence
   number makes simultaneous events fire in scheduling order, which keeps
   runs fully deterministic.  Cancellation is lazy: a cancelled handle's
   closure is skipped when popped.

   The queue is the monomorphic [Event_queue] (flat int key planes, no
   comparator closure, no option on pop).  Two scheduling paths feed it:
   [schedule_at]/[schedule_after] allocate a cancellation handle, while
   the [_unit] variants are the fire-and-forget fast path — no handle,
   the payload is the caller's closure wrapped in a single [Fast]
   constructor.  A handle tracks whether its event is pending, fired, or
   cancelled, so cancelling after the fact is a no-op and the cancelled
   metric counts real cancellations only.

   Observability: the engine owns the run's metrics registry and an
   optional trace sink (picked up from [Psn_obs.Trace.default] at
   creation, so a CLI flag enables tracing without threading a value
   through every constructor).  The tracer branch is hoisted out of the
   [run] drain loop: the untraced loop never tests the option, so with
   no sink installed the per-event overhead is zero rather than a branch. *)

module Trace = Psn_obs.Trace
module Metrics = Psn_obs.Metrics

type hstate = Pending | Fired | Cancelled

type handle = { mutable state : hstate; action : unit -> unit; owner : t }

and ev =
  | Fast of (unit -> unit)  (* no-cancel fast path *)
  | Tracked of handle       (* one block: handle doubles as the payload *)

and t = {
  mutable now : Sim_time.t;
  mutable processed : int;
  queue : ev Event_queue.t;
  rng : Psn_util.Rng.t;
  aux_rng : Psn_util.Rng.t;
      (* independent stream for scenario/world randomness, so protocol
         construction (which draws from [rng]) cannot perturb the world:
         the same seed gives the same world under every clock kind *)
  mutable tracer : Trace.sink option;
  timeline : Metrics.timeline option;
  metrics : Metrics.t;
  c_scheduled : Metrics.counter;
  c_fired : Metrics.counter;
  c_cancelled : Metrics.counter;
}

let noop () = ()

let now t = t.now
let rng t = t.rng
let scenario_rng t = t.aux_rng
let events_processed t = t.processed
let pending t = Event_queue.length t.queue

let next_time_ns t =
  if Event_queue.is_empty t.queue then max_int
  else Event_queue.min_time_ns t.queue

let tracer t = t.tracer
let set_tracer t s = t.tracer <- s
let metrics t = t.metrics

let[@inline] trace_schedule t time =
  match t.tracer with
  | Some s ->
      Trace.emit s ~time:t.now ~pid:Trace.engine_pid
        (Trace.Engine_schedule { at = Sim_time.to_ns time })
  | None -> ()

let schedule_at t time action =
  if Sim_time.(time < t.now) then
    invalid_arg "Engine.schedule_at: time is in the past";
  let h = { state = Pending; action; owner = t } in
  Metrics.tick t.c_scheduled;
  trace_schedule t time;
  Event_queue.add t.queue ~time_ns:(Sim_time.to_ns time) (Tracked h);
  h

let schedule_after t delay action =
  if Sim_time.is_negative delay then
    invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (Sim_time.add t.now delay) action

let schedule_at_unit t time action =
  if Sim_time.(time < t.now) then
    invalid_arg "Engine.schedule_at_unit: time is in the past";
  Metrics.tick t.c_scheduled;
  trace_schedule t time;
  Event_queue.add t.queue ~time_ns:(Sim_time.to_ns time) (Fast action)

let schedule_after_unit t delay action =
  if Sim_time.is_negative delay then
    invalid_arg "Engine.schedule_after_unit: negative delay";
  schedule_at_unit t (Sim_time.add t.now delay) action

let create ?(seed = 42L) ?tracer ?timeline ?(use_default_obs = true) () =
  let metrics = Metrics.create () in
  let timeline =
    match timeline with
    | Some _ as tl -> tl
    | None -> if use_default_obs then Metrics.default_timeline () else None
  in
  let t =
    {
      now = Sim_time.zero;
      processed = 0;
      queue = Event_queue.create ~dummy:(Fast noop) ();
      rng = Psn_util.Rng.create ~seed ();
      aux_rng = Psn_util.Rng.create ~seed:(Int64.add seed 0x5DEECE66DL) ();
      tracer =
        (match tracer with
        | Some _ as s -> s
        | None -> if use_default_obs then Trace.default () else None);
      timeline;
      metrics;
      c_scheduled = Metrics.counter metrics "engine.scheduled";
      c_fired = Metrics.counter metrics "engine.fired";
      c_cancelled = Metrics.counter metrics "engine.cancelled";
    }
  in
  (* Timeline sampler: a self-rescheduling event that snapshots the
     registry every period of simulated time.  It re-arms only while
     other events remain queued, so a horizonless [run] still drains; the
     [engine.queue_depth] gauge is registered only here, keeping default
     report snapshots identical whether or not a timeline is in play. *)
  (match t.timeline with
  | None -> ()
  | Some tl ->
      let depth = Metrics.gauge metrics "engine.queue_depth" in
      let period = Metrics.timeline_period_ns tl in
      let rec sample () =
        Metrics.set depth (float_of_int (Event_queue.length t.queue));
        Metrics.timeline_record tl ~time_ns:(Sim_time.to_ns t.now) t.metrics;
        if not (Event_queue.is_empty t.queue) then
          schedule_after_unit t (Sim_time.of_ns period) sample
      in
      schedule_at_unit t Sim_time.zero sample);
  t

let timeline t = t.timeline

let cancel h =
  match h.state with
  | Pending ->
      h.state <- Cancelled;
      Metrics.tick h.owner.c_cancelled;
      (match h.owner.tracer with
      | Some s ->
          Trace.emit s ~time:h.owner.now ~pid:Trace.engine_pid
            Trace.Engine_cancel
      | None -> ())
  | Fired | Cancelled -> ()

let cancelled h = match h.state with Cancelled -> true | Pending | Fired -> false

(* Run one event; [false] when the queue is empty.  [Sim_time.t] is an
   int of nanoseconds, so the popped key assigns to [now] directly. *)
let step t =
  if Event_queue.is_empty t.queue then false
  else begin
    let tns = Event_queue.min_time_ns t.queue in
    let ev = Event_queue.pop_exn t.queue in
    t.now <- tns;
    (match ev with
    | Fast action ->
        t.processed <- t.processed + 1;
        Metrics.tick t.c_fired;
        (match t.tracer with
        | Some s ->
            Trace.emit s ~time:t.now ~pid:Trace.engine_pid Trace.Engine_fire
        | None -> ());
        action ()
    | Tracked h -> (
        match h.state with
        | Pending ->
            h.state <- Fired;
            t.processed <- t.processed + 1;
            Metrics.tick t.c_fired;
            (match t.tracer with
            | Some s ->
                Trace.emit s ~time:t.now ~pid:Trace.engine_pid Trace.Engine_fire
            | None -> ());
            h.action ()
        | Fired | Cancelled -> ()));
    true
  end

(* The two drain loops differ only in the per-fire trace emission; the
   untraced one is the hot loop of every experiment and never tests the
   tracer option.  [limit_ns = max_int] means "no horizon". *)

let drain_untraced t limit_ns =
  let q = t.queue in
  let running = ref true in
  while !running do
    if Event_queue.is_empty q then running := false
    else begin
      let tns = Event_queue.min_time_ns q in
      if tns > limit_ns then running := false
      else begin
        t.now <- tns;
        match Event_queue.pop_exn q with
        | Fast action ->
            t.processed <- t.processed + 1;
            Metrics.tick t.c_fired;
            action ()
        | Tracked h -> (
            match h.state with
            | Pending ->
                h.state <- Fired;
                t.processed <- t.processed + 1;
                Metrics.tick t.c_fired;
                h.action ()
            | Fired | Cancelled -> ())
      end
    end
  done

(* Per-event execution spans live only in the traced loop — [step] and
   the untraced loop stay span-free.  Executing an action never advances
   [t.now] (only popping does), so begin and end share the timestamp; the
   span still brackets everything the event emitted, which is what the
   exporters nest under it. *)
let exec_begin = Trace.Span_begin { name = "engine.exec"; lane = Trace.lane_sync }
let exec_end = Trace.Span_end { name = "engine.exec"; lane = Trace.lane_sync }

let drain_traced t s limit_ns =
  let q = t.queue in
  let running = ref true in
  while !running do
    if Event_queue.is_empty q then running := false
    else begin
      let tns = Event_queue.min_time_ns q in
      if tns > limit_ns then running := false
      else begin
        t.now <- tns;
        match Event_queue.pop_exn q with
        | Fast action ->
            t.processed <- t.processed + 1;
            Metrics.tick t.c_fired;
            Trace.emit s ~time:t.now ~pid:Trace.engine_pid Trace.Engine_fire;
            Trace.emit s ~time:t.now ~pid:Trace.engine_pid exec_begin;
            action ();
            Trace.emit s ~time:t.now ~pid:Trace.engine_pid exec_end
        | Tracked h -> (
            match h.state with
            | Pending ->
                h.state <- Fired;
                t.processed <- t.processed + 1;
                Metrics.tick t.c_fired;
                Trace.emit s ~time:t.now ~pid:Trace.engine_pid Trace.Engine_fire;
                Trace.emit s ~time:t.now ~pid:Trace.engine_pid exec_begin;
                h.action ();
                Trace.emit s ~time:t.now ~pid:Trace.engine_pid exec_end
            | Fired | Cancelled -> ())
      end
    end
  done

let run ?until t =
  let limit_ns =
    match until with None -> max_int | Some limit -> Sim_time.to_ns limit
  in
  (match t.tracer with
  | None -> drain_untraced t limit_ns
  | Some s -> drain_traced t s limit_ns);
  match until with
  | Some limit when Sim_time.(t.now < limit) ->
      (* Advance the clock to the horizon so observers agree on the final
         time; any still-pending events are strictly beyond it, so the
         clock invariant is preserved. *)
      t.now <- limit
  | _ -> ()

(* Schedule [action] every [period] until it returns [false] or [until]
   (when given) is passed.  Returns a handle cancelling future firings.
   The per-firing events go through the fire-and-forget fast path; the
   master handle alone carries the cancellation state. *)
let schedule_periodic ?until t ~start ~period action =
  if Sim_time.(period <= Sim_time.zero) then
    invalid_arg "Engine.schedule_periodic: period must be positive";
  let master = { state = Pending; action = noop; owner = t } in
  let rec fire () =
    match master.state with
    | Cancelled -> ()
    | Pending | Fired -> begin
      let keep_going = action () in
      let next = Sim_time.add t.now period in
      let within_horizon =
        match until with None -> true | Some limit -> Sim_time.(next <= limit)
      in
      if keep_going && within_horizon then schedule_at_unit t next fire
    end
  in
  let within_horizon =
    match until with None -> true | Some limit -> Sim_time.(start <= limit)
  in
  if within_horizon then schedule_at_unit t start fire;
  master
