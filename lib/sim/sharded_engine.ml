(* Conservative window-synchronized sharding over per-shard [Engine]s.

   The coordinator alternates two phases:

     window:  every shard drains its queue up to [window_end - 1] on the
              [Psn_util.Parallel] pool; shards share no mutable state —
              cross-shard sends only append to their (src, dst) mailbox
              ring, which no other domain touches during the window;

     barrier: the coordinator (alone) drains every mailbox in src-major,
              dst-minor, FIFO order into the destination queues, then
              computes the next window from the new global minimum.

   The pool's job hand-off (mutex + condition) gives the happens-before
   edges: coordinator-before-window for the mailbox writes of the
   previous drain, window-before-coordinator for the rings written by
   the shards.

   Mailbox ring layout: [stride] ints per message — delivery time,
   destination pid, and [lanes] payload words — in one flat [int array]
   that grows by doubling and is reused across windows, so a
   steady-state cross-shard send writes 9 ints and allocates nothing.
   Delivery closures are pooled per destination shard (same trick as
   [Net]'s delivery records): acquired by the coordinator at the
   barrier, released by the shard when they fire, never concurrently. *)

type handler =
  dst:int ->
  w0:int -> w1:int -> w2:int -> w3:int -> w4:int -> w5:int -> w6:int -> unit

let lanes = 7
let stride = lanes + 2 (* at, dst, w0..w6 *)

(* A pooled delivery: mutable lanes plus a closure allocated once per
   record.  [d_fire] copies the lanes to locals and releases the record
   before invoking the handler, so re-entrant same-shard sends can reuse
   it immediately. *)
type delivery = {
  mutable v_dst : int;
  mutable v0 : int;
  mutable v1 : int;
  mutable v2 : int;
  mutable v3 : int;
  mutable v4 : int;
  mutable v5 : int;
  mutable v6 : int;
  d_fire : unit -> unit;
}

type shard = {
  engine : Engine.t;
  mutable handler : handler option;
  mutable pool : delivery array; (* free stack, see header comment *)
  mutable pool_len : int;
}

type mailbox = { mutable buf : int array; mutable len : int (* ints used *) }

type t = {
  k : int;
  lookahead : int; (* ns, > 0 *)
  shard : shard array;
  mail : mailbox array; (* src * k + dst; diagonal entries stay empty *)
  mutable window_end : int; (* exclusive end of the last window run *)
  mutable rounds : int;
  stats : Psn_obs.Shard_stats.t;
      (* host-time window/barrier counters; never feeds a sim artifact *)
}

let create ?(seed = 42L) ~shards ~lookahead () =
  if shards < 1 then invalid_arg "Sharded_engine.create: shards must be >= 1";
  if Sim_time.(lookahead <= Sim_time.zero) then
    invalid_arg
      "Sharded_engine.create: lookahead must be positive — a delay model \
       with Delay_model.min_delay = 0 offers no conservative window and \
       cannot drive a sharded run";
  let shard =
    Array.init shards (fun s ->
        {
          engine =
            Engine.create
              ~seed:(Int64.add seed (Int64.of_int (s * 0x9E3779B9)))
              ~use_default_obs:false ();
          handler = None;
          pool = [||];
          pool_len = 0;
        })
  in
  {
    k = shards;
    lookahead = Sim_time.to_ns lookahead;
    shard;
    mail = Array.init (shards * shards) (fun _ -> { buf = [||]; len = 0 });
    window_end = 0;
    rounds = 0;
    stats =
      Psn_obs.Shard_stats.create ~shards
        ~lookahead_ns:(Sim_time.to_ns lookahead);
  }

let shards t = t.k
let lookahead t = t.lookahead
let engine t s = t.shard.(s).engine
let windows t = t.rounds
let now t = Engine.now t.shard.(0).engine
let stats t = t.stats

let set_handler t ~shard h = t.shard.(shard).handler <- Some h

let events_processed t =
  Array.fold_left (fun acc s -> acc + Engine.events_processed s.engine) 0 t.shard

let merged_metrics t =
  Psn_obs.Metrics.merge_snapshots
    (Array.to_list
       (Array.map (fun s -> Psn_obs.Metrics.snapshot (Engine.metrics s.engine)) t.shard))

let release sh r =
  if sh.pool_len = Array.length sh.pool then begin
    let np = Array.make (2 * max 4 (Array.length sh.pool)) r in
    Array.blit sh.pool 0 np 0 sh.pool_len;
    sh.pool <- np
  end;
  sh.pool.(sh.pool_len) <- r;
  sh.pool_len <- sh.pool_len + 1

let acquire sh ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6 =
  if sh.pool_len = 0 then
    let rec r =
      {
        v_dst = dst;
        v0 = w0; v1 = w1; v2 = w2; v3 = w3; v4 = w4; v5 = w5; v6 = w6;
        d_fire =
          (fun () ->
            let dst = r.v_dst in
            let w0 = r.v0 and w1 = r.v1 and w2 = r.v2 and w3 = r.v3 in
            let w4 = r.v4 and w5 = r.v5 and w6 = r.v6 in
            release sh r;
            match sh.handler with
            | Some h -> h ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6
            | None -> ());
      }
    in
    r
  else begin
    sh.pool_len <- sh.pool_len - 1;
    let r = sh.pool.(sh.pool_len) in
    r.v_dst <- dst;
    r.v0 <- w0; r.v1 <- w1; r.v2 <- w2; r.v3 <- w3;
    r.v4 <- w4; r.v5 <- w5; r.v6 <- w6;
    r
  end

let post t ~src_shard ~dst_shard ~at ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6 =
  if src_shard = dst_shard then begin
    (* Same shard: schedule directly, exactly as a single-queue engine
       would — this keeps K=1 sharded runs event-for-event identical to
       the oracle.  Runs on the shard's own domain, touching only its
       own pool and queue. *)
    let sh = t.shard.(src_shard) in
    let r = acquire sh ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6 in
    Engine.schedule_at_unit sh.engine at r.d_fire
  end
  else begin
    let box = t.mail.((src_shard * t.k) + dst_shard) in
    let need = box.len + stride in
    if need > Array.length box.buf then begin
      let cap = ref (max (stride * 16) (Array.length box.buf)) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Array.make !cap 0 in
      Array.blit box.buf 0 nb 0 box.len;
      box.buf <- nb
    end;
    let b = box.buf and o = box.len in
    b.(o) <- Sim_time.to_ns at;
    b.(o + 1) <- dst;
    b.(o + 2) <- w0; b.(o + 3) <- w1; b.(o + 4) <- w2; b.(o + 5) <- w3;
    b.(o + 6) <- w4; b.(o + 7) <- w5; b.(o + 8) <- w6;
    box.len <- need;
    (* Shard-local slot of the conservation counter: safe mid-window. *)
    Psn_obs.Shard_stats.note_posted t.stats ~src:src_shard
  end

(* Barrier drain: coordinator only.  Deterministic src-major, dst-minor,
   FIFO-within-box order; every entry must land at or past the window
   end the lookahead promised. *)
let drain t =
  let occupancy = ref 0 in
  for src = 0 to t.k - 1 do
    for dst = 0 to t.k - 1 do
      let box = t.mail.((src * t.k) + dst) in
      if box.len > 0 then begin
        occupancy := !occupancy + box.len;
        Psn_obs.Shard_stats.note_traffic t.stats ~src ~dst
          ~msgs:(box.len / stride);
        let sh = t.shard.(dst) in
        let b = box.buf in
        let o = ref 0 in
        while !o < box.len do
          let at = b.(!o) in
          if at < t.window_end then
            invalid_arg
              (Printf.sprintf
                 "Sharded_engine: lookahead violation — message from shard \
                  %d to shard %d delivered at %dns inside the window ending \
                  at %dns; the transport sampled a delay below the \
                  engine's lookahead bound"
                 src dst at t.window_end);
          let r =
            acquire sh ~dst:b.(!o + 1) ~w0:b.(!o + 2) ~w1:b.(!o + 3)
              ~w2:b.(!o + 4) ~w3:b.(!o + 5) ~w4:b.(!o + 6) ~w5:b.(!o + 7)
              ~w6:b.(!o + 8)
          in
          Engine.schedule_at_unit sh.engine at r.d_fire;
          o := !o + stride
        done;
        box.len <- 0
      end
    done
  done;
  Psn_obs.Shard_stats.note_occupancy t.stats ~ints:!occupancy

let global_next t =
  Array.fold_left
    (fun acc s -> min acc (Engine.next_time_ns s.engine))
    max_int t.shard

let run t ~until =
  let st = t.stats in
  let r0 = Psn_obs.Shard_stats.now_ns () in
  let until_ns = Sim_time.to_ns until in
  let continue = ref true in
  while !continue do
    (* Drain before measuring: the previous window's cross-shard sends —
       and any posts made before the first [run] (initial conditions) —
       must be in the queues for the global minimum to see them. *)
    Psn_obs.Shard_stats.round_begin st;
    let d0 = Psn_obs.Shard_stats.now_ns () in
    Psn_obs.Profile.phase "sharded.drain" (fun () -> drain t);
    let d1 = Psn_obs.Shard_stats.now_ns () in
    Psn_obs.Shard_stats.drain_done st ~host_ns:(d1 - d0);
    let next = global_next t in
    let d2 = Psn_obs.Shard_stats.now_ns () in
    Psn_obs.Shard_stats.fold_done st ~host_ns:(d2 - d1);
    (* Only now — with the rings drained into the queues — is the
       previous window's limit knowable. *)
    Psn_obs.Shard_stats.classify_prev st ~next_ns:next;
    if next > until_ns then begin
      Psn_obs.Shard_stats.round_abort st;
      continue := false
    end
    else begin
      let cand = next + t.lookahead in
      let cand = if cand < next then max_int else cand (* overflow *) in
      let w_end = min cand (until_ns + 1) in
      t.window_end <- w_end;
      Psn_obs.Shard_stats.window_open st ~start_ns:next ~end_ns:w_end;
      let w_last = Sim_time.of_ns (w_end - 1) in
      Psn_obs.Profile.phase "sharded.window" (fun () ->
          ignore
            (Psn_util.Parallel.init t.k (fun s ->
                 let b0 = Psn_obs.Shard_stats.now_ns () in
                 let sh = t.shard.(s) in
                 Engine.run ~until:w_last sh.engine;
                 (* Writes only slot [s]; the pool join publishes it. *)
                 Psn_obs.Shard_stats.shard_report st ~shard:s
                   ~events_total:(Engine.events_processed sh.engine)
                   ~busy_ns:(Psn_obs.Shard_stats.now_ns () - b0))));
      Psn_obs.Shard_stats.window_close st ~clipped:(cand > until_ns + 1)
        ~par_ns:(Psn_obs.Shard_stats.now_ns () - d2);
      t.rounds <- t.rounds + 1
    end
  done;
  (* Align every clock on the horizon (queues hold only events beyond
     it, so this drains nothing). *)
  Array.iter (fun s -> Engine.run ~until s.engine) t.shard;
  Psn_obs.Shard_stats.run_done st
    ~wall_ns:(Psn_obs.Shard_stats.now_ns () - r0)
