(** Sharded discrete-event engine with conservative window
    synchronization.

    Processes are partitioned into [shards] shards, each owning its own
    {!Engine.t} — event queue, RNG streams, metrics registry — so a
    window of simulated time can execute on the
    {!Psn_util.Parallel} domain pool with no shared mutable state.
    Synchronization is conservative, in the classic PDES sense: the
    coordinator repeatedly computes the global safe horizon

    {v window_end = (min over shards of next event time) + lookahead v}

    and lets every shard drain events strictly below it in parallel.
    [lookahead] must be a guaranteed lower bound on cross-shard message
    delay ({!Delay_model.min_delay} of the transport's model): any
    message sent at time [t] inside the window arrives at
    [t + delay >= window_start + lookahead = window_end], i.e. outside
    the window, so no shard can receive an event for its past.

    Cross-shard sends do not touch the destination queue mid-window:
    they append to a per-(src, dst) {e mailbox ring} — a flat [int]
    buffer, no per-message allocation — which the coordinator drains in
    deterministic (src-major, dst-minor, FIFO) order at the window
    barrier.  Same-shard sends schedule directly, exactly as on a
    single-queue engine.  Payloads are [lanes] integer words handed to
    the destination shard's {!handler}; delivery closures come from a
    per-shard pool, so steady-state delivery allocates nothing.

    Determinism: shard assignment is the caller's (fixed) mapping,
    mailbox drain order is fixed, and each shard's engine is seeded from
    [(seed, shard)] — so a run is a pure function of the seed, whatever
    the domain count ([PSN_DOMAINS=1] included). *)

type t

type handler =
  dst:int ->
  w0:int -> w1:int -> w2:int -> w3:int -> w4:int -> w5:int -> w6:int -> unit
(** Delivery callback of one shard: [dst] is the destination process id,
    [w0..w6] the payload lanes.  Runs on the destination shard's domain
    with that shard's engine clock at the delivery time. *)

val lanes : int
(** Payload lanes per message (7). *)

val create : ?seed:int64 -> shards:int -> lookahead:Sim_time.t -> unit -> t
(** Raises [Invalid_argument] when [shards < 1] — or when
    [lookahead <= 0]: a zero-lookahead delay model (one whose
    {!Delay_model.min_delay} is zero) offers no conservative window and
    cannot drive a sharded run. *)

val shards : t -> int
val lookahead : t -> Sim_time.t

val engine : t -> int -> Engine.t
(** The shard's own engine.  Created with [~use_default_obs:false]:
    process-wide default sinks are not domain-safe, so shards never pick
    them up. *)

val set_handler : t -> shard:int -> handler -> unit

val post :
  t -> src_shard:int -> dst_shard:int -> at:Sim_time.t -> dst:int ->
  w0:int -> w1:int -> w2:int -> w3:int -> w4:int -> w5:int -> w6:int -> unit
(** Deliver lanes [w0..w6] to process [dst] of [dst_shard] at absolute
    time [at].  Same-shard posts schedule directly; cross-shard posts go
    to the mailbox ring and are scheduled at the next barrier, where
    [at < window_end] raises (a lookahead violation: the transport
    sampled a delay below the lookahead bound it promised). *)

val run : t -> until:Sim_time.t -> unit
(** Execute windows until every shard's queue is past [until]; every
    shard's clock ends exactly at [until].  Windows run on the
    {!Psn_util.Parallel} pool (the calling domain participates; with one
    domain the loop degrades to sequential round-robin with identical
    results). *)

val now : t -> Sim_time.t
(** The synchronized clock: shards agree on it between windows. *)

val windows : t -> int
(** Barrier rounds executed so far. *)

val events_processed : t -> int
(** Sum over shards. *)

val merged_metrics : t -> Psn_obs.Metrics.snapshot
(** {!Psn_obs.Metrics.merge_snapshots} of the per-shard registries. *)

val stats : t -> Psn_obs.Shard_stats.t
(** The run's per-window observability counters: per-shard events and
    busy host time, coordinator drain/fold time, mailbox traffic, and
    window-limit classification, recorded at every barrier.  Host-time
    readings live only here (the {!Psn_obs.Profile} quarantine rule):
    same-seed sim artifacts — traces, metrics, reports — are
    byte-identical whether or not stats are consumed.  [run] also
    brackets its phases as {!Psn_obs.Profile.phase} ["sharded.drain"]
    / ["sharded.window"], so [psn-sim profile] works on sharded
    scenarios. *)
