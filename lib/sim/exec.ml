(* One workload, two substrates: a single-queue oracle engine, or a
   window-synchronized [Sharded_engine].  The single path mirrors the
   sharded delivery mechanics (pooled records, flat lanes, one global
   handler) so the only difference between substrates is where events
   queue — which is exactly what the differential suite wants to vary.

   Workload determinism contract (what makes same-seed runs identical
   across substrates): derive every entity's RNG stream from
   [(seed, entity id)], never from an engine's own generator; keep each
   group's mutable state group-local; and make cross-group observables
   insensitive to equal-time arrival order (sort on substrate-invariant
   keys before acting). *)

type handler = Sharded_engine.handler

type delivery = {
  mutable v_dst : int;
  mutable v0 : int;
  mutable v1 : int;
  mutable v2 : int;
  mutable v3 : int;
  mutable v4 : int;
  mutable v5 : int;
  mutable v6 : int;
  d_fire : unit -> unit;
}

type single = {
  s_engine : Engine.t;
  mutable s_handler : handler option;
  mutable s_pool : delivery array;
  mutable s_pool_len : int;
}

type kind = Single of single | Sharded of Sharded_engine.t

type t = { kind : kind; t_seed : int64 }

let single ?(seed = 42L) () =
  {
    kind =
      Single
        {
          s_engine = Engine.create ~seed ~use_default_obs:false ();
          s_handler = None;
          s_pool = [||];
          s_pool_len = 0;
        };
    t_seed = seed;
  }

let sharded ?(seed = 42L) ~shards ~lookahead () =
  { kind = Sharded (Sharded_engine.create ~seed ~shards ~lookahead ()); t_seed = seed }

let seed t = t.t_seed

let shards t =
  match t.kind with Single _ -> 1 | Sharded se -> Sharded_engine.shards se

let is_sharded t = match t.kind with Single _ -> false | Sharded _ -> true

let lookahead t =
  match t.kind with
  | Single _ -> Sim_time.zero
  | Sharded se -> Sharded_engine.lookahead se

let engine t ~group =
  match t.kind with
  | Single s -> s.s_engine
  | Sharded se -> Sharded_engine.engine se (group mod Sharded_engine.shards se)

let set_handler t h =
  match t.kind with
  | Single s -> s.s_handler <- Some h
  | Sharded se ->
      for sh = 0 to Sharded_engine.shards se - 1 do
        Sharded_engine.set_handler se ~shard:sh h
      done

let release s r =
  if s.s_pool_len = Array.length s.s_pool then begin
    let np = Array.make (2 * max 4 (Array.length s.s_pool)) r in
    Array.blit s.s_pool 0 np 0 s.s_pool_len;
    s.s_pool <- np
  end;
  s.s_pool.(s.s_pool_len) <- r;
  s.s_pool_len <- s.s_pool_len + 1

let acquire s ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6 =
  if s.s_pool_len = 0 then
    let rec r =
      {
        v_dst = dst;
        v0 = w0; v1 = w1; v2 = w2; v3 = w3; v4 = w4; v5 = w5; v6 = w6;
        d_fire =
          (fun () ->
            let dst = r.v_dst in
            let w0 = r.v0 and w1 = r.v1 and w2 = r.v2 and w3 = r.v3 in
            let w4 = r.v4 and w5 = r.v5 and w6 = r.v6 in
            release s r;
            match s.s_handler with
            | Some h -> h ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6
            | None -> ());
      }
    in
    r
  else begin
    s.s_pool_len <- s.s_pool_len - 1;
    let r = s.s_pool.(s.s_pool_len) in
    r.v_dst <- dst;
    r.v0 <- w0; r.v1 <- w1; r.v2 <- w2; r.v3 <- w3;
    r.v4 <- w4; r.v5 <- w5; r.v6 <- w6;
    r
  end

let post t ~src_group ~dst_group ~at ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6 =
  match t.kind with
  | Single s ->
      let r = acquire s ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6 in
      Engine.schedule_at_unit s.s_engine at r.d_fire
  | Sharded se ->
      let k = Sharded_engine.shards se in
      Sharded_engine.post se ~src_shard:(src_group mod k)
        ~dst_shard:(dst_group mod k) ~at ~dst ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6

let run t ~until =
  match t.kind with
  | Single s -> Engine.run ~until s.s_engine
  | Sharded se -> Sharded_engine.run se ~until

let events_processed t =
  match t.kind with
  | Single s -> Engine.events_processed s.s_engine
  | Sharded se -> Sharded_engine.events_processed se

let windows t =
  match t.kind with Single _ -> 0 | Sharded se -> Sharded_engine.windows se

let merged_metrics t =
  match t.kind with
  | Single s -> Psn_obs.Metrics.snapshot (Engine.metrics s.s_engine)
  | Sharded se -> Sharded_engine.merged_metrics se

let stats t =
  match t.kind with
  | Single _ -> None
  | Sharded se -> Some (Sharded_engine.stats se)

let shard_snapshots t =
  match t.kind with
  | Single s -> [| Psn_obs.Metrics.snapshot (Engine.metrics s.s_engine) |]
  | Sharded se ->
      Array.init (Sharded_engine.shards se) (fun s ->
          Psn_obs.Metrics.snapshot (Engine.metrics (Sharded_engine.engine se s)))
