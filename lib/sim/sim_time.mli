(** Simulated time: integer nanoseconds since the start of the run.

    The representation is an immediate native [int] (63-bit: ±146 years
    of nanoseconds), so time arithmetic never allocates and times pack
    into flat unboxed arrays (the event queue's key planes). *)

type t = int

val zero : t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

val of_ns : int -> t
(** Raises on negative input; durations are non-negative by construction. *)

val of_us : int -> t
val of_ms : int -> t
val of_sec : int -> t
val of_sec_float : float -> t
val to_ns : t -> int
val to_sec_float : t -> float
val to_ms_float : t -> float
val is_negative : t -> bool

val scale : t -> float -> t
(** Scale a duration by a non-negative factor. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
