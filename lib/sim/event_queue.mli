(** Monomorphic event queue: 4-ary min-heap keyed on (time in ns,
    insertion sequence), the discrete-event engine's hot path.

    Keys live in flat immediate-[int] planes parallel to the payload
    array, so comparisons are inlined integer compares (no comparator
    closure, no boxed keys) and pops allocate nothing (no [option]).
    Equal times pop in insertion order — the FIFO tie-break that keeps
    simulations deterministic.  Vacated payload slots are overwritten
    with [dummy] so popped payloads (typically closures) are not
    retained by the backing array. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills empty payload slots; it is never returned by
    [pop_exn] unless it was explicitly added. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time_ns:int -> 'a -> unit
(** Amortized O(log₄ n); allocation only on capacity growth. *)

val min_time_ns : 'a t -> int
(** Key of the next event to pop. Raises [Invalid_argument] when empty. *)

val pop_exn : 'a t -> 'a
(** Remove and return the payload with the smallest (time, seq) key.
    Raises [Invalid_argument] when empty — guard with [is_empty]; the
    split avoids an option allocation per event. *)

val clear : 'a t -> unit
(** Drop all pending events (payload slots are released). *)
