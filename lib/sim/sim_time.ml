(* Simulated time as integer nanoseconds.

   Integer time keeps event ordering exact and platform-independent; all
   user-facing durations go through the unit constructors below.

   The representation is a native immediate [int] (63-bit on 64-bit
   platforms: ±146 years of nanoseconds), not a boxed [int64]: times are
   the hottest values in the system — every event key, every delay
   sample, every [Engine.now] read — and an immediate representation
   makes time arithmetic allocation-free and lets the event queue keep
   its keys in flat unboxed arrays. *)

type t = int

let zero = 0

(* The [int] annotations matter: without them these compile to the
   polymorphic comparison primitives (a C call through [compare_val] per
   use), with them to single machine compares. *)
let compare (a : int) (b : int) = Int.compare a b
let equal (a : int) (b : int) = Int.equal a b
let ( < ) (a : int) b = Stdlib.( < ) a b
let ( <= ) (a : int) b = Stdlib.( <= ) a b
let ( > ) (a : int) b = Stdlib.( > ) a b
let ( >= ) (a : int) b = Stdlib.( >= ) a b
let min (a : int) b = if Stdlib.( <= ) a b then a else b
let max (a : int) b = if Stdlib.( >= ) a b then a else b

let add = ( + )
let sub = ( - )

let of_ns ns =
  if Stdlib.( < ) ns 0 then invalid_arg "Sim_time.of_ns: negative";
  ns

let of_us us = of_ns (us * 1_000)
let of_ms ms = of_ns (ms * 1_000_000)
let of_sec s = of_ns (s * 1_000_000_000)

let of_sec_float s =
  if Stdlib.( < ) s 0.0 then invalid_arg "Sim_time.of_sec_float: negative";
  int_of_float (s *. 1e9)

let to_ns t = t
let to_sec_float t = float_of_int t /. 1e9
let to_ms_float t = float_of_int t /. 1e6

let is_negative (t : int) = Stdlib.( < ) t 0

(* Scale a duration by a float factor, e.g. jitter multipliers. *)
let scale t k =
  if Stdlib.( < ) k 0.0 then invalid_arg "Sim_time.scale: negative factor";
  int_of_float (float_of_int t *. k)

let pp ppf t =
  let ns = float_of_int t in
  if Stdlib.( < ) ns 1e3 then Fmt.pf ppf "%.0fns" ns
  else if Stdlib.( < ) ns 1e6 then Fmt.pf ppf "%.1fus" (ns /. 1e3)
  else if Stdlib.( < ) ns 1e9 then Fmt.pf ppf "%.1fms" (ns /. 1e6)
  else Fmt.pf ppf "%.3fs" (ns /. 1e9)

let to_string t = Fmt.str "%a" pp t
