(** Message delay models from the paper's design space (§3.2.2):
    synchronous, asynchronous Δ-bounded, and asynchronous unbounded. *)

type t

val synchronous : t
val bounded_uniform : min:Sim_time.t -> max:Sim_time.t -> t
val bounded_exponential : mean:Sim_time.t -> cap:Sim_time.t -> t
val unbounded_exponential : mean:Sim_time.t -> t
val unbounded_pareto : scale:Sim_time.t -> shape:float -> t

val sample : t -> Psn_util.Rng.t -> Sim_time.t
(** Draw one message delay. *)

val delta : t -> Sim_time.t option
(** The Δ bound, when one exists. *)

val min_delay : t -> Sim_time.t
(** Guaranteed minimum delay: every {!sample} of the model is at least
    this value.  This is the conservative-synchronization lookahead
    bound used by [Sharded_engine] — a model whose [min_delay] is zero
    offers no lookahead and cannot drive a sharded run. *)

val mean_delay : t -> Sim_time.t
val pp : Format.formatter -> t -> unit
