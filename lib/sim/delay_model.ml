(* Message transmission/propagation delay models (paper §3.2.2).

   The paper's design space: (a) instantaneous/synchronous — the ideal
   case; (b) asynchronous Δ-bounded — the practical sensornet case, where
   bounded retransmission attempts bound the delay; (c) asynchronous
   unbounded — worst-case analysis. *)

type t =
  | Synchronous
      (* Δ = 0: delivery at the same instant (still after the send in
         execution order, thanks to the engine's sequence numbers). *)
  | Bounded_uniform of { min : Sim_time.t; max : Sim_time.t }
  | Bounded_exponential of { mean : Sim_time.t; cap : Sim_time.t }
      (* Exponential delay truncated at [cap]; models retransmission
         back-off with a bounded number of attempts. *)
  | Unbounded_exponential of { mean : Sim_time.t }
  | Unbounded_pareto of { scale : Sim_time.t; shape : float }

let synchronous = Synchronous

let bounded_uniform ~min ~max =
  if Sim_time.( < ) max min then invalid_arg "Delay_model.bounded_uniform: max < min";
  Bounded_uniform { min; max }

let bounded_exponential ~mean ~cap =
  if Sim_time.( < ) cap mean then invalid_arg "Delay_model.bounded_exponential: cap < mean";
  Bounded_exponential { mean; cap }

let unbounded_exponential ~mean = Unbounded_exponential { mean }

let unbounded_pareto ~scale ~shape =
  if shape <= 0.0 then invalid_arg "Delay_model.unbounded_pareto: shape <= 0";
  Unbounded_pareto { scale; shape }

let sample t rng =
  match t with
  | Synchronous -> Sim_time.zero
  | Bounded_uniform { min; max } ->
      let span = Sim_time.to_sec_float (Sim_time.sub max min) in
      Sim_time.add min (Sim_time.of_sec_float (Psn_util.Rng.float rng span))
  | Bounded_exponential { mean; cap } ->
      let d =
        Psn_util.Rng.exponential rng ~mean:(Sim_time.to_sec_float mean)
      in
      Sim_time.min cap (Sim_time.of_sec_float d)
  | Unbounded_exponential { mean } ->
      Sim_time.of_sec_float
        (Psn_util.Rng.exponential rng ~mean:(Sim_time.to_sec_float mean))
  | Unbounded_pareto { scale; shape } ->
      Sim_time.of_sec_float
        (Psn_util.Rng.pareto rng ~scale:(Sim_time.to_sec_float scale) ~shape)

(* Guaranteed minimum delay — the conservative-synchronization lookahead
   bound: every [sample] is >= [min_delay].  For the uniform model this
   is [min] ([sample] adds a non-negative rounded offset to it); for
   Pareto it is the float round-trip of [scale] (u^(-1/shape) >= 1 and
   [of_sec_float] is monotone, so no sample can round below it).  The
   exponential models can sample arbitrarily close to zero, as can
   Synchronous by definition. *)
let min_delay = function
  | Synchronous -> Sim_time.zero
  | Bounded_uniform { min; _ } -> min
  | Bounded_exponential _ | Unbounded_exponential _ -> Sim_time.zero
  | Unbounded_pareto { scale; _ } ->
      Sim_time.of_sec_float (Sim_time.to_sec_float scale)

(* The Δ bound when one exists; [None] for the unbounded models. *)
let delta = function
  | Synchronous -> Some Sim_time.zero
  | Bounded_uniform { max; _ } -> Some max
  | Bounded_exponential { cap; _ } -> Some cap
  | Unbounded_exponential _ | Unbounded_pareto _ -> None

let mean_delay = function
  | Synchronous -> Sim_time.zero
  | Bounded_uniform { min; max } ->
      Sim_time.of_sec_float
        ((Sim_time.to_sec_float min +. Sim_time.to_sec_float max) /. 2.0)
  | Bounded_exponential { mean; _ } -> mean
  | Unbounded_exponential { mean } -> mean
  | Unbounded_pareto { scale; shape } ->
      if shape <= 1.0 then scale (* infinite mean; report the scale *)
      else Sim_time.scale scale (shape /. (shape -. 1.0))

let pp ppf = function
  | Synchronous -> Fmt.pf ppf "synchronous"
  | Bounded_uniform { min; max } ->
      Fmt.pf ppf "uniform[%a,%a]" Sim_time.pp min Sim_time.pp max
  | Bounded_exponential { mean; cap } ->
      Fmt.pf ppf "exp(mean=%a,cap=%a)" Sim_time.pp mean Sim_time.pp cap
  | Unbounded_exponential { mean } -> Fmt.pf ppf "exp(mean=%a)" Sim_time.pp mean
  | Unbounded_pareto { scale; shape } ->
      Fmt.pf ppf "pareto(scale=%a,shape=%.2f)" Sim_time.pp scale shape
