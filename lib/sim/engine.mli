(** Deterministic discrete-event simulation engine.

    Simultaneous events fire in scheduling order; all randomness comes from
    the engine's seeded generator. *)

type t
type handle

val create : ?seed:int64 -> ?tracer:Psn_obs.Trace.sink -> unit -> t
(** When [tracer] is omitted, the process-wide [Psn_obs.Trace.default]
    sink (if any) is picked up, so deeply nested engine creations trace
    without plumbing. *)

val now : t -> Sim_time.t
val rng : t -> Psn_util.Rng.t

val tracer : t -> Psn_obs.Trace.sink option
val set_tracer : t -> Psn_obs.Trace.sink option -> unit

val metrics : t -> Psn_obs.Metrics.t
(** Per-run metrics registry; instrumented layers register their counters
    here so one snapshot covers the whole stack. *)

val scenario_rng : t -> Psn_util.Rng.t
(** Independent stream for world/scenario randomness: protocol-side draws
    from [rng] cannot perturb the world, so a seed fixes the world across
    clock kinds. *)

val events_processed : t -> int
val pending : t -> int

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> handle
(** Raises if the time is before [now]. *)

val schedule_after : t -> Sim_time.t -> (unit -> unit) -> handle
val cancel : handle -> unit
val cancelled : handle -> bool

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val run : ?until:Sim_time.t -> t -> unit
(** Process events until the queue empties or the horizon is passed. When a
    horizon is given the clock always ends at it. *)

val schedule_periodic :
  ?until:Sim_time.t -> t -> start:Sim_time.t -> period:Sim_time.t ->
  (unit -> bool) -> handle
(** Fire repeatedly from [start] every [period] until the callback returns
    [false], the horizon passes, or the handle is cancelled. *)
