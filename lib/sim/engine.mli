(** Deterministic discrete-event simulation engine.

    Simultaneous events fire in scheduling order; all randomness comes from
    the engine's seeded generator. *)

type t
type handle

val create :
  ?seed:int64 ->
  ?tracer:Psn_obs.Trace.sink ->
  ?timeline:Psn_obs.Metrics.timeline ->
  ?use_default_obs:bool ->
  unit -> t
(** When [tracer] is omitted, the process-wide [Psn_obs.Trace.default]
    sink (if any) is picked up, so deeply nested engine creations trace
    without plumbing; likewise [timeline] falls back to
    [Psn_obs.Metrics.default_timeline].  With a timeline in play the
    engine registers an [engine.queue_depth] gauge and snapshots its
    registry every [timeline_period_ns] of simulated time, stopping when
    the rest of the queue drains (so [run] without a horizon still
    terminates).

    [use_default_obs] (default [true]) controls that pickup: engines
    destined for worker domains ([Sharded_engine] shards) pass [false],
    because the process-wide defaults are not domain-safe and a shard
    must not observe sinks installed for the coordinating run. *)

val now : t -> Sim_time.t
val rng : t -> Psn_util.Rng.t

val tracer : t -> Psn_obs.Trace.sink option
val timeline : t -> Psn_obs.Metrics.timeline option

val set_tracer : t -> Psn_obs.Trace.sink option -> unit
(** The tracer branch is hoisted out of the event drain loop, so a sink
    installed from inside a callback takes effect at the next [run] or
    [step] call, not mid-drain. *)

val metrics : t -> Psn_obs.Metrics.t
(** Per-run metrics registry; instrumented layers register their counters
    here so one snapshot covers the whole stack. *)

val scenario_rng : t -> Psn_util.Rng.t
(** Independent stream for world/scenario randomness: protocol-side draws
    from [rng] cannot perturb the world, so a seed fixes the world across
    clock kinds. *)

val events_processed : t -> int
val pending : t -> int

val next_time_ns : t -> int
(** Time key of the earliest pending event; [max_int] when the queue is
    empty.  The conservative window computation reads this per shard. *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> handle
(** Raises if the time is before [now]. *)

val schedule_after : t -> Sim_time.t -> (unit -> unit) -> handle

val schedule_at_unit : t -> Sim_time.t -> (unit -> unit) -> unit
(** Fire-and-forget fast path: like [schedule_at] but without allocating
    a cancellation handle — the event cannot be cancelled and is not
    individually observable before it fires.  Semantics are otherwise
    identical (same FIFO tie-break seq space, same scheduled/fired
    metrics and trace events), so [ignore (schedule_at t at f)] and
    [schedule_at_unit t at f] produce byte-identical runs.  Use it for
    every event whose handle would be ignored: message deliveries,
    detector flushes, world ticks.  Raises if the time is before [now]. *)

val schedule_after_unit : t -> Sim_time.t -> (unit -> unit) -> unit
(** [schedule_at_unit] at [now + delay]; raises on negative delay. *)

val cancel : handle -> unit
(** Cancelling a pending event marks it and counts it in the
    [engine.cancelled] metric; the closure is skipped when its slot pops.
    Cancelling a handle whose event already fired — or was already
    cancelled — is a no-op, so the metric counts real cancellations
    only. *)

val cancelled : handle -> bool
(** [true] only when [cancel] took effect before the event fired. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val run : ?until:Sim_time.t -> t -> unit
(** Process events until the queue empties or the horizon is passed. When a
    horizon is given the clock always ends at it. *)

val schedule_periodic :
  ?until:Sim_time.t -> t -> start:Sim_time.t -> period:Sim_time.t ->
  (unit -> bool) -> handle
(** Fire repeatedly from [start] every [period] until the callback returns
    [false], the horizon passes, or the handle is cancelled. *)
