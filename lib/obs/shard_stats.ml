(* Per-window flat-int arena for sharded-run observability.

   Row layout ([stride] ints, header then per-shard lanes then the
   traffic matrix):

     0  start_ns     sim ns, window start (the global minimum)
     1  end_ns       sim ns, exclusive window end
     2  limit        0 lookahead- / 1 queue- / 2 horizon-limited
     3  drain_ns     host ns, coordinator mailbox drain
     4  fold_ns      host ns, coordinator next-window fold
     5  par_ns       host ns, the whole parallel region
     6  mail_msgs    cross-shard messages drained at this barrier
     7  mail_ints    ring occupancy (ints) at this barrier, pre-drain
     8 .. 8+k-1          per-shard events executed in the window
     8+k .. 8+2k-1       per-shard busy host ns
     8+2k .. 8+2k+k²-1   messages src→dst drained at this barrier

   The arena grows by doubling and rows are reused on abort, so
   steady-state recording allocates nothing (the pending_arena idiom).

   Shard-domain writers (shard_report, note_posted) get their own
   padded slot — [pad] ints apart — so concurrent increments on
   neighbouring shards do not share a cache line. *)

let header = 8
let o_start = 0
let o_end = 1
let o_limit = 2
let o_drain = 3
let o_fold = 4
let o_par = 5
let o_msgs = 6
let o_ints = 7
let pad = 8

type limit = Lookahead | Queue | Horizon

let limit_to_string = function
  | Lookahead -> "lookahead"
  | Queue -> "queue"
  | Horizon -> "horizon"

let limit_of_int = function 0 -> Lookahead | 1 -> Queue | _ -> Horizon
let int_of_limit = function Lookahead -> 0 | Queue -> 1 | Horizon -> 2

type t = {
  k : int;
  la_ns : int;
  stride : int; (* header + 2k + k² *)
  mutable rows : int array;
  mutable n : int; (* committed rows *)
  mutable cur : int; (* offset of the open row; -1 when none *)
  events_scratch : int array; (* slot s*pad: shard s's cumulative count *)
  busy_scratch : int array; (* slot s*pad: shard s's window busy ns *)
  posted : int array; (* slot s*pad: shard s's cross-shard posts *)
  last_events : int array; (* coordinator-only: previous cumulative *)
  mutable drained : int;
  mutable peak_ints : int;
  mutable wall_ns : int;
  mutable ep_drain : int;
  mutable ep_fold : int;
  mutable ep_msgs : int;
  mutable unclassified : bool;
      (* the last committed row awaits [classify_prev] *)
}

let create ~shards ~lookahead_ns =
  if shards < 1 then invalid_arg "Shard_stats.create: shards must be >= 1";
  let stride = header + (2 * shards) + (shards * shards) in
  {
    k = shards;
    la_ns = lookahead_ns;
    stride;
    rows = Array.make (stride * 64) 0;
    n = 0;
    cur = -1;
    events_scratch = Array.make (shards * pad) 0;
    busy_scratch = Array.make (shards * pad) 0;
    posted = Array.make (shards * pad) 0;
    last_events = Array.make shards 0;
    drained = 0;
    peak_ints = 0;
    wall_ns = 0;
    ep_drain = 0;
    ep_fold = 0;
    ep_msgs = 0;
    unclassified = false;
  }

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* --- recording --------------------------------------------------------- *)

let round_begin t =
  let need = (t.n + 1) * t.stride in
  if need > Array.length t.rows then begin
    let cap = ref (Array.length t.rows) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nr = Array.make !cap 0 in
    Array.blit t.rows 0 nr 0 (t.n * t.stride);
    t.rows <- nr
  end;
  let o = t.n * t.stride in
  Array.fill t.rows o t.stride 0;
  t.cur <- o

let note_traffic t ~src ~dst ~msgs =
  let o = t.cur in
  let cell = o + header + (2 * t.k) + (src * t.k) + dst in
  t.rows.(cell) <- t.rows.(cell) + msgs;
  t.rows.(o + o_msgs) <- t.rows.(o + o_msgs) + msgs;
  t.drained <- t.drained + msgs

let note_occupancy t ~ints =
  t.rows.(t.cur + o_ints) <- t.rows.(t.cur + o_ints) + ints;
  if ints > t.peak_ints then t.peak_ints <- ints

let drain_done t ~host_ns = t.rows.(t.cur + o_drain) <- host_ns
let fold_done t ~host_ns = t.rows.(t.cur + o_fold) <- host_ns

let window_open t ~start_ns ~end_ns =
  t.rows.(t.cur + o_start) <- start_ns;
  t.rows.(t.cur + o_end) <- end_ns

let shard_report t ~shard ~events_total ~busy_ns =
  t.events_scratch.(shard * pad) <- events_total;
  t.busy_scratch.(shard * pad) <- busy_ns

let window_close t ~clipped ~par_ns =
  let o = t.cur in
  t.rows.(o + o_limit) <- int_of_limit (if clipped then Horizon else Queue);
  t.rows.(o + o_par) <- par_ns;
  for s = 0 to t.k - 1 do
    let total = t.events_scratch.(s * pad) in
    t.rows.(o + header + s) <- total - t.last_events.(s);
    t.last_events.(s) <- total;
    t.rows.(o + header + t.k + s) <- t.busy_scratch.(s * pad)
  done;
  t.n <- t.n + 1;
  t.cur <- -1;
  t.unclassified <- not clipped

let classify_prev t ~next_ns =
  if t.unclassified && t.n > 0 then begin
    let o = (t.n - 1) * t.stride in
    if next_ns - t.rows.(o + o_end) < t.la_ns then
      t.rows.(o + o_limit) <- int_of_limit Lookahead;
    t.unclassified <- false
  end

let round_abort t =
  let o = t.cur in
  t.ep_drain <- t.ep_drain + t.rows.(o + o_drain);
  t.ep_fold <- t.ep_fold + t.rows.(o + o_fold);
  t.ep_msgs <- t.ep_msgs + t.rows.(o + o_msgs);
  t.cur <- -1

let note_posted t ~src =
  t.posted.(src * pad) <- t.posted.(src * pad) + 1

let run_done t ~wall_ns = t.wall_ns <- t.wall_ns + wall_ns

(* --- reading ----------------------------------------------------------- *)

let shards t = t.k
let lookahead_ns t = t.la_ns
let windows t = t.n
let start_ns t w = t.rows.((w * t.stride) + o_start)
let end_ns t w = t.rows.((w * t.stride) + o_end)
let limit t w = limit_of_int t.rows.((w * t.stride) + o_limit)
let drain_ns t w = t.rows.((w * t.stride) + o_drain)
let fold_ns t w = t.rows.((w * t.stride) + o_fold)
let par_ns t w = t.rows.((w * t.stride) + o_par)
let mail_msgs t w = t.rows.((w * t.stride) + o_msgs)
let mail_ints t w = t.rows.((w * t.stride) + o_ints)
let events t w ~shard = t.rows.((w * t.stride) + header + shard)
let busy_ns t w ~shard = t.rows.((w * t.stride) + header + t.k + shard)

let traffic t w ~src ~dst =
  t.rows.((w * t.stride) + header + (2 * t.k) + (src * t.k) + dst)

let total_events t =
  let acc = ref 0 in
  for w = 0 to t.n - 1 do
    for s = 0 to t.k - 1 do
      acc := !acc + events t w ~shard:s
    done
  done;
  !acc

let posted_total t =
  let acc = ref 0 in
  for s = 0 to t.k - 1 do
    acc := !acc + t.posted.(s * pad)
  done;
  !acc

let drained_total t = t.drained
let pending t = posted_total t - drained_total t
let peak_mail_ints t = t.peak_ints
let run_wall_ns t = t.wall_ns
let epilogue_drain_ns t = t.ep_drain
let epilogue_fold_ns t = t.ep_fold
let epilogue_mail_msgs t = t.ep_msgs

(* --- serialization ----------------------------------------------------- *)

let totals_json t =
  Json.Obj
    [
      ("windows", Json.Int t.n);
      ("events", Json.Int (total_events t));
      ("posted", Json.Int (posted_total t));
      ("drained", Json.Int t.drained);
      ("pending", Json.Int (pending t));
      ("peak_mailbox_ints", Json.Int t.peak_ints);
      ("run_wall_ns", Json.Int t.wall_ns);
      ("epilogue_drain_ns", Json.Int t.ep_drain);
      ("epilogue_fold_ns", Json.Int t.ep_fold);
      ("epilogue_mail_msgs", Json.Int t.ep_msgs);
    ]

let row_json t w =
  let ints f = Json.List (List.init t.k (fun s -> Json.Int (f s))) in
  let base =
    [
      ("start_ns", Json.Int (start_ns t w));
      ("end_ns", Json.Int (end_ns t w));
      ("limit", Json.Str (limit_to_string (limit t w)));
      ("drain_ns", Json.Int (drain_ns t w));
      ("fold_ns", Json.Int (fold_ns t w));
      ("par_ns", Json.Int (par_ns t w));
      ("mail_msgs", Json.Int (mail_msgs t w));
      ("mail_ints", Json.Int (mail_ints t w));
      ("events", ints (fun s -> events t w ~shard:s));
      ("busy_ns", ints (fun s -> busy_ns t w ~shard:s));
    ]
  in
  (* The matrix is all zeros in most windows (and always for K = 1):
     omit it and let the parser default to zeros. *)
  if mail_msgs t w = 0 then Json.Obj base
  else
    Json.Obj
      (base
      @ [
          ( "traffic",
            Json.List
              (List.init (t.k * t.k) (fun i ->
                   Json.Int (traffic t w ~src:(i / t.k) ~dst:(i mod t.k))))
          );
        ])

let raw_members t =
  [
    ("shards", Json.Int t.k);
    ("lookahead_ns", Json.Int t.la_ns);
    ("totals", totals_json t);
    ("windows", Json.List (List.init t.n (fun w -> row_json t w)));
  ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let int name j =
    match Json.member name j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "shardstats: missing int %S" name)
  in
  let int_list name j =
    match Json.member name j with
    | Some (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Int i :: rest -> go (i :: acc) rest
          | _ -> Error (Printf.sprintf "shardstats: non-int in %S" name)
        in
        go [] l
    | _ -> Error (Printf.sprintf "shardstats: missing list %S" name)
  in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str "psn-shardstats/1") -> Ok ()
    | Some (Json.Str s) ->
        Error (Printf.sprintf "shardstats: unsupported schema %S" s)
    | _ -> Error "shardstats: missing \"schema\""
  in
  let* k = int "shards" j in
  let* la = int "lookahead_ns" j in
  if k < 1 then Error "shardstats: shards must be >= 1"
  else
    let t = create ~shards:k ~lookahead_ns:la in
    let* tot =
      match Json.member "totals" j with
      | Some o -> Ok o
      | None -> Error "shardstats: missing \"totals\""
    in
    let* posted = int "posted" tot in
    let* drained = int "drained" tot in
    let* peak = int "peak_mailbox_ints" tot in
    let* wall = int "run_wall_ns" tot in
    let* ep_drain = int "epilogue_drain_ns" tot in
    let* ep_fold = int "epilogue_fold_ns" tot in
    let* ep_msgs = int "epilogue_mail_msgs" tot in
    t.posted.(0) <- posted;
    t.drained <- drained;
    t.peak_ints <- peak;
    t.wall_ns <- wall;
    t.ep_drain <- ep_drain;
    t.ep_fold <- ep_fold;
    t.ep_msgs <- ep_msgs;
    let* rows =
      match Json.member "windows" j with
      | Some (Json.List l) -> Ok l
      | _ -> Error "shardstats: missing \"windows\""
    in
    let rec load = function
      | [] -> Ok t
      | row :: rest ->
          round_begin t;
          let o = t.cur in
          let* s = int "start_ns" row in
          let* e = int "end_ns" row in
          let* lim =
            match Json.member "limit" row with
            | Some (Json.Str "lookahead") -> Ok 0
            | Some (Json.Str "queue") -> Ok 1
            | Some (Json.Str "horizon") -> Ok 2
            | _ -> Error "shardstats: bad \"limit\""
          in
          let* drain = int "drain_ns" row in
          let* fold = int "fold_ns" row in
          let* par = int "par_ns" row in
          let* msgs = int "mail_msgs" row in
          let* ints = int "mail_ints" row in
          let* ev = int_list "events" row in
          let* busy = int_list "busy_ns" row in
          if List.length ev <> k || List.length busy <> k then
            Error "shardstats: per-shard list length mismatch"
          else begin
            t.rows.(o + o_start) <- s;
            t.rows.(o + o_end) <- e;
            t.rows.(o + o_limit) <- lim;
            t.rows.(o + o_drain) <- drain;
            t.rows.(o + o_fold) <- fold;
            t.rows.(o + o_par) <- par;
            t.rows.(o + o_msgs) <- msgs;
            t.rows.(o + o_ints) <- ints;
            List.iteri (fun s v -> t.rows.(o + header + s) <- v) ev;
            List.iteri (fun s v -> t.rows.(o + header + k + s) <- v) busy;
            let* () =
              match Json.member "traffic" row with
              | None -> Ok ()
              | Some _ ->
                  let* m = int_list "traffic" row in
                  if List.length m <> k * k then
                    Error "shardstats: traffic matrix length mismatch"
                  else begin
                    List.iteri
                      (fun i v -> t.rows.(o + header + (2 * k) + i) <- v)
                      m;
                    Ok ()
                  end
            in
            t.n <- t.n + 1;
            t.cur <- -1;
            load rest
          end
    in
    load rows
