(** Trace exporters: JSONL and Chrome [trace_event] format.

    Both are deterministic byte-for-byte given the same sink contents, so
    traces from equal seeds diff clean. The Chrome export loads in
    Perfetto / [chrome://tracing]: processes map to tracks ([pid]), and
    simulated nanoseconds map to trace microseconds. *)

val jsonl_to_buffer : Buffer.t -> Trace.sink -> unit
(** One JSON object per record, one record per line, in emission order. *)

val jsonl_string : Trace.sink -> string
val write_jsonl : out_channel -> Trace.sink -> unit

val chrome_to_buffer : Buffer.t -> Trace.sink -> unit
(** A complete [{"traceEvents":[...]}] document: instant events on one
    track per process, with process-name metadata. *)

val chrome_string : Trace.sink -> string
val write_chrome : out_channel -> Trace.sink -> unit
