(** Trace exporters: JSONL and Chrome [trace_event] format.

    Both are deterministic byte-for-byte given the same sink contents, so
    traces from equal seeds diff clean. The Chrome export loads in
    Perfetto / [chrome://tracing]: processes map to tracks ([pid]),
    [Span_begin]/[Span_end] records to duration slices (["B"]/["E"], one
    Chrome tid per span lane), message send/deliver pairs to thin slices
    joined by flow arrows (["s"]/["f"] events keyed by the correlation
    id), detector occurrences with a window to latency slices, and — when
    a timeline is given — metric samples to counter tracks (["C"]).
    Simulated nanoseconds map to trace microseconds. *)

val jsonl_to_buffer : Buffer.t -> Trace.sink -> unit
(** One JSON object per record, one record per line, in emission order.
    Spans carry ["name"] and ["lane"]; net records carry their ["flow"]
    correlation id. *)

val jsonl_string : Trace.sink -> string
val write_jsonl : out_channel -> Trace.sink -> unit

val merged_jsonl : Trace.sink list -> string
(** Deterministic merge of per-shard sinks: records sorted by
    (time, pid, rendered body) and re-sequenced.  The ordering keys are
    substrate-invariant, so a sharded run's merged trace is
    byte-identical to the single-queue oracle's when both emitted the
    same records — per-sink sequence numbers (arrival interleaving) are
    dropped by design. *)

val timeline_jsonl_to_buffer : Buffer.t -> Metrics.timeline -> unit
(** One line per sample: [{"t_ns":..,"values":{"metric":v,..}}], oldest
    first. *)

val timeline_jsonl_string : Metrics.timeline -> string
val write_timeline_jsonl : out_channel -> Metrics.timeline -> unit

val chrome_to_buffer : ?timeline:Metrics.timeline -> Buffer.t -> Trace.sink -> unit
(** A complete [{"traceEvents":[...]}] document: spans, flow arrows,
    instants, and (with [?timeline]) counter tracks, with process-name
    metadata. *)

val chrome_string : ?timeline:Metrics.timeline -> Trace.sink -> string
val write_chrome : ?timeline:Metrics.timeline -> out_channel -> Trace.sink -> unit

val merged_chrome : Trace.sink list -> string
(** One Chrome document for the per-group sinks of a sharded run.
    Sink [g]'s events render in tid block [g * stride + lane] (with
    [stride] the deepest span lane any sink used, at least 2), so
    shard id maps to tid deterministically instead of every group
    colliding on lanes 0/1 as with per-sink {!chrome_string}. *)

val write_merged_chrome : out_channel -> Trace.sink list -> unit

val shard_chrome_string : Shard_stats.t -> string
(** Host-time Gantt of a sharded run from its {!Shard_stats}: shard =
    pid row (one ["window"] slice per barrier window, carrying events
    and the window's limit), coordinator = pid 0 (explicit
    ["barrier.drain"] / ["barrier.fold"] slices), cross-shard mail =
    flow arrows from the sending window to the receiving one.  The
    time axis is a synthetic host-ns cursor laying slices end to end
    in execution order. *)

val write_shard_chrome : out_channel -> Shard_stats.t -> unit
