(* Structured trace sink.

   A sink is a growable array of typed records; emission is an O(1)
   append plus a sequence-number bump. Everything user-facing (export,
   filtering, pretty names) lives in [Export]; this module only captures.

   Time is integer nanoseconds rather than [Psn_sim.Sim_time.t] because
   [Psn_sim] depends on this library (the engine carries the sink), so
   the dependency cannot point the other way. The representations are
   identical. *)

type event =
  | Engine_schedule of { at : int }
  | Engine_fire
  | Engine_cancel
  | Net_send of { src : int; dst : int; words : int; kind : string }
  | Net_deliver of { src : int; dst : int; kind : string }
  | Net_drop of { src : int; dst : int; kind : string }
  | Clock_tick of { clock : string }
  | Clock_receive of { clock : string }
  | Clock_strobe of { clock : string }
  | Detector_update of { var : string; seq : int }
  | Detector_occurrence of { verdict : string }
  | Mark of { name : string }

type record = { seq : int; time : int; pid : int; event : event }

let engine_pid = -1

let dummy_record = { seq = 0; time = 0; pid = 0; event = Engine_fire }

type sink = {
  mutable next_seq : int;
  records : record Psn_util.Vec.t;
}

let create () = { next_seq = 0; records = Psn_util.Vec.create ~dummy:dummy_record () }

let emit sink ~time ~pid event =
  let seq = sink.next_seq in
  sink.next_seq <- seq + 1;
  Psn_util.Vec.push sink.records { seq; time; pid; event }

let length sink = Psn_util.Vec.length sink.records

let clear sink =
  sink.next_seq <- 0;
  Psn_util.Vec.clear sink.records

let iter f sink = Psn_util.Vec.iter f sink.records
let records sink = Psn_util.Vec.to_list sink.records

let event_name = function
  | Engine_schedule _ -> "engine.schedule"
  | Engine_fire -> "engine.fire"
  | Engine_cancel -> "engine.cancel"
  | Net_send _ -> "net.send"
  | Net_deliver _ -> "net.deliver"
  | Net_drop _ -> "net.drop"
  | Clock_tick _ -> "clock.tick"
  | Clock_receive _ -> "clock.receive"
  | Clock_strobe _ -> "clock.strobe"
  | Detector_update _ -> "detector.update"
  | Detector_occurrence _ -> "detector.occurrence"
  | Mark { name } -> name

(* Process-wide default, picked up by [Engine.create]. *)
let default_sink : sink option ref = ref None
let set_default s = default_sink := s
let default () = !default_sink

let with_default s f =
  let saved = !default_sink in
  default_sink := Some s;
  Fun.protect ~finally:(fun () -> default_sink := saved) f
