(* Structured trace sink.

   A sink is a growable array of typed records; emission is an O(1)
   append plus a sequence-number bump. Everything user-facing (export,
   filtering, pretty names) lives in [Export]; this module only captures.

   Time is integer nanoseconds rather than [Psn_sim.Sim_time.t] because
   [Psn_sim] depends on this library (the engine carries the sink), so
   the dependency cannot point the other way. The representations are
   identical.

   Two id spaces live here besides the record sequence number:

   - Flow ids correlate a message send with its delivery (or drop): the
     network allocates one per traced transmission via [fresh_flow], so
     the exporters can draw send -> deliver arrows between process
     tracks.  Ids are per-sink and allocation order is deterministic,
     so same-seed traces stay byte-identical.

   - Span lanes separate nesting domains.  Chrome's B/E duration events
     must nest properly per (pid, tid); spans emitted from inside a
     single engine-event execution (lane 0) trivially nest, but
     long-lived spans that start in one engine event and end in another
     (a snapshot round, a mutex critical section) would interleave with
     them.  Such spans go to lane 1, which the Chrome exporter maps to a
     separate tid. *)

type event =
  | Engine_schedule of { at : int }
  | Engine_fire
  | Engine_cancel
  | Span_begin of { name : string; lane : int }
  | Span_end of { name : string; lane : int }
  | Net_send of { src : int; dst : int; words : int; kind : string; flow : int }
  | Net_deliver of { src : int; dst : int; kind : string; flow : int }
  | Net_drop of { src : int; dst : int; kind : string; flow : int }
  | Clock_tick of { clock : string }
  | Clock_receive of { clock : string }
  | Clock_strobe of { clock : string }
  | Detector_update of { var : string; seq : int }
  | Detector_occurrence of { verdict : string; window_ns : int }
  | Lattice_commit of { level : int; live : int; committed : int }
  | Mark of { name : string }

type record = { seq : int; time : int; pid : int; event : event }

let engine_pid = -1

let lane_sync = 0
let lane_window = 1

let dummy_record = { seq = 0; time = 0; pid = 0; event = Engine_fire }

type sink = {
  mutable next_seq : int;
  mutable next_flow : int;
  retain : bool;
  mutable tap : (record -> unit) option;
  records : record Psn_util.Vec.t;
}

let create ?(retain = true) () =
  { next_seq = 0; next_flow = 0; retain; tap = None;
    records = Psn_util.Vec.create ~dummy:dummy_record () }

let set_tap sink tap = sink.tap <- tap

let emit sink ~time ~pid event =
  let seq = sink.next_seq in
  sink.next_seq <- seq + 1;
  let r = { seq; time; pid; event } in
  if sink.retain then Psn_util.Vec.push sink.records r;
  match sink.tap with Some f -> f r | None -> ()

let fresh_flow sink =
  let id = sink.next_flow in
  sink.next_flow <- id + 1;
  id

let length sink = Psn_util.Vec.length sink.records

let clear sink =
  sink.next_seq <- 0;
  sink.next_flow <- 0;
  Psn_util.Vec.clear sink.records

let iter f sink = Psn_util.Vec.iter f sink.records
let records sink = Psn_util.Vec.to_list sink.records

let event_name = function
  | Engine_schedule _ -> "engine.schedule"
  | Engine_fire -> "engine.fire"
  | Engine_cancel -> "engine.cancel"
  | Span_begin { name; _ } | Span_end { name; _ } -> name
  | Net_send _ -> "net.send"
  | Net_deliver _ -> "net.deliver"
  | Net_drop _ -> "net.drop"
  | Clock_tick _ -> "clock.tick"
  | Clock_receive _ -> "clock.receive"
  | Clock_strobe _ -> "clock.strobe"
  | Detector_update _ -> "detector.update"
  | Detector_occurrence _ -> "detector.occurrence"
  | Lattice_commit _ -> "lattice.commit"
  | Mark { name } -> name

(* Balanced span over [f], both endpoints at the caller-supplied times.
   [time_end] is read after [f] returns because simulated time may have
   advanced during it. *)
let with_span sink ~time ~pid ?(lane = lane_sync) name f ~time_end =
  emit sink ~time ~pid (Span_begin { name; lane });
  let finally () = emit sink ~time:(time_end ()) ~pid (Span_end { name; lane }) in
  Fun.protect ~finally f

(* Process-wide default, picked up by [Engine.create]. *)
let default_sink : sink option ref = ref None
let set_default s = default_sink := s
let default () = !default_sink

let with_default s f =
  let saved = !default_sink in
  default_sink := Some s;
  Fun.protect ~finally:(fun () -> default_sink := saved) f
