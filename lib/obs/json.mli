(** Minimal JSON tree, printer, and parser.

    Just enough for the observability layer — metric snapshots and trace
    exports — without an external dependency. Printing is deterministic:
    fields in the order given; finite floats via ["%.17g"] (plus a
    [".0"] suffix when integral, so a [Float] parses back as a [Float])
    — every finite double survives a print/parse round trip exactly.
    Non-finite floats print as [null], the only valid-JSON option.  The
    parser accepts exactly the standard grammar. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Numbers without [.], [e], or [E] parse as [Int]; others as [Float]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val escape_to_buffer : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string literal. *)
