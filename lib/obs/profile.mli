(** Host-time scoped profiler with GC telemetry.

    The one module in the observability layer that reads the *host*
    clock. [with_phase] brackets a thunk with the monotonic clock and
    [Gc.quick_stat], accumulating wall nanoseconds and GC deltas per
    phase name. Host readings never enter a trace sink or metrics
    registry — they live only in the profile artifact — so same-seed
    trace byte-identity is unaffected by profiling.

    Phases aggregate by name (re-entering sums into the same row) and
    keep first-entry order. Nesting is allowed; a nested phase's cost is
    also counted in its enclosing phase, as in any wall-clock profiler. *)

type t

type phase = {
  name : string;
  count : int;  (** times the phase was entered *)
  wall_ns : int;  (** total host wall time, nanoseconds *)
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

val create : unit -> t

val with_phase : t -> string -> (unit -> 'a) -> 'a
(** [with_phase t name f] runs [f ()], charging its wall time and GC
    deltas to [name]. Records even when [f] raises. *)

val phases : t -> phase list
(** Accumulated phases in first-entry order. *)

val to_json : t -> string
(** ["psn-profile/1"] document: schema, unit, and the phase rows with a
    fixed field order. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table: name, count, wall ms, allocation, GC counts. *)

(** {1 Process-wide default}

    Mirrors [Trace.set_default]: installs a profile that the
    instrumentation helper [phase] charges to. Without a default
    installed, [phase name f] is just [f ()]. *)

val set_default : t option -> unit
val default : unit -> t option
val with_default : t -> (unit -> 'a) -> 'a
val phase : string -> (unit -> 'a) -> 'a
