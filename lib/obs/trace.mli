(** Structured trace sink: typed events from every layer of a run.

    Each record carries the simulated time (integer nanoseconds, mirroring
    [Psn_sim.Sim_time] without depending on it — [Psn_sim] sits above this
    library), the emitting process id, and a monotonically increasing trace
    sequence number. Runs are deterministic, so with a fixed seed the trace
    is a reproducible artifact: identical seeds must yield identical traces.

    The sink is zero-cost when disabled: instrumented layers hold a
    [sink option] and skip all work on [None]. *)

type event =
  | Engine_schedule of { at : int }  (** event queued for time [at] *)
  | Engine_fire                        (** queued event popped and executed *)
  | Engine_cancel                      (** a handle was cancelled *)
  | Net_send of { src : int; dst : int; words : int; kind : string }
  | Net_deliver of { src : int; dst : int; kind : string }
  | Net_drop of { src : int; dst : int; kind : string }
  | Clock_tick of { clock : string }     (** local clock ticked at a sense event *)
  | Clock_receive of { clock : string }  (** receiver clock reacted to a stamp *)
  | Clock_strobe of { clock : string }   (** stamp broadcast system-wide *)
  | Detector_update of { var : string; seq : int }
  | Detector_occurrence of { verdict : string }
  | Mark of { name : string }
      (** middleware milestones (causal delivery, snapshot markers, ...) *)

type record = { seq : int; time : int; pid : int; event : event }

val engine_pid : int
(** Pseudo process id (-1) for engine-level events, which belong to the
    simulation substrate rather than to any process. *)

type sink

val create : unit -> sink

val emit : sink -> time:int -> pid:int -> event -> unit
(** Append a record; the sink assigns the next sequence number. *)

val length : sink -> int
val clear : sink -> unit
val iter : (record -> unit) -> sink -> unit
val records : sink -> record list

val event_name : event -> string
(** Dotted layer-qualified name, e.g. ["net.send"] or ["engine.fire"]. *)

(** {2 Process-wide default sink}

    Layers that create their own engines deep inside a run (scenarios,
    experiment sweeps) pick the default sink up at engine creation, so a
    CLI flag can enable tracing without threading a value through every
    constructor. Not domain-safe: callers that enable a default sink must
    keep the run single-domain (see [Psn_util.Parallel.set_sequential]). *)

val set_default : sink option -> unit
val default : unit -> sink option

val with_default : sink -> (unit -> 'a) -> 'a
(** [with_default s f] installs [s], runs [f], and restores the previous
    default even on exceptions. *)
