(** Structured trace sink: typed events from every layer of a run.

    Each record carries the simulated time (integer nanoseconds, mirroring
    [Psn_sim.Sim_time] without depending on it — [Psn_sim] sits above this
    library), the emitting process id, and a monotonically increasing trace
    sequence number. Runs are deterministic, so with a fixed seed the trace
    is a reproducible artifact: identical seeds must yield identical traces.

    Beyond instant events the sink records two causal structures:

    - {b Spans}: [Span_begin]/[Span_end] pairs delimit durations (an
      engine-event execution, a detector flush, a snapshot round).  Spans
      must balance per (pid, lane); [lane_sync] is for spans opened and
      closed within one engine event (they nest trivially), [lane_window]
      for spans crossing engine events, which would otherwise interleave.

    - {b Flow ids}: every traced message transmission carries a
      per-sink correlation id shared by its [Net_send] and the matching
      [Net_deliver] (or [Net_drop]), so exporters can draw the
      happens-before edge between process tracks.

    The sink is zero-cost when disabled: instrumented layers hold a
    [sink option] and skip all work on [None]. *)

type event =
  | Engine_schedule of { at : int }  (** event queued for time [at] *)
  | Engine_fire                        (** queued event popped and executed *)
  | Engine_cancel                      (** a handle was cancelled *)
  | Span_begin of { name : string; lane : int }  (** duration start *)
  | Span_end of { name : string; lane : int }    (** matching duration end *)
  | Net_send of { src : int; dst : int; words : int; kind : string; flow : int }
  | Net_deliver of { src : int; dst : int; kind : string; flow : int }
  | Net_drop of { src : int; dst : int; kind : string; flow : int }
  | Clock_tick of { clock : string }     (** local clock ticked at a sense event *)
  | Clock_receive of { clock : string }  (** receiver clock reacted to a stamp *)
  | Clock_strobe of { clock : string }   (** stamp broadcast system-wide *)
  | Detector_update of { var : string; seq : int }
  | Detector_occurrence of { verdict : string; window_ns : int }
      (** [window_ns]: sense-to-detect latency of the trigger, rendered by
          the Chrome exporter as a duration slice ending at the record's
          time *)
  | Lattice_commit of { level : int; live : int; committed : int }
      (** streaming-lattice progress at a detector flush: highest
          finalized cut level, cuts in the live slab, total committed
          cuts — the slab-occupancy evidence [Analyze] aggregates *)
  | Mark of { name : string }
      (** middleware milestones (causal delivery, snapshot markers, ...) *)

type record = { seq : int; time : int; pid : int; event : event }

val engine_pid : int
(** Pseudo process id (-1) for engine-level events, which belong to the
    simulation substrate rather than to any process. *)

val lane_sync : int
(** Lane 0: spans contained in a single engine-event execution. *)

val lane_window : int
(** Lane 1: spans crossing engine events (snapshot rounds, critical
    sections, occurrence windows); mapped to a separate Chrome tid so
    they cannot break lane-0 nesting. *)

type sink

val create : ?retain:bool -> unit -> sink
(** [retain] (default [true]): keep records in the sink for later
    iteration/export.  [~retain:false] turns the sink into a pure stream
    head — records are handed to the tap (below) and discarded, so an
    online consumer (e.g. [Analyze]) can sit inline during a heavy run
    without the trace growing with run length.  Sequence and flow-id
    allocation are identical either way, so a retained and an unretained
    same-seed run see byte-identical record streams. *)

val set_tap : sink -> (record -> unit) option -> unit
(** Install (or remove) a streaming observer called with every record as
    it is emitted, after the optional append.  One tap per sink. *)

val emit : sink -> time:int -> pid:int -> event -> unit
(** Append a record; the sink assigns the next sequence number. *)

val fresh_flow : sink -> int
(** Allocate the next message-correlation id.  Deterministic: allocation
    order is part of the trace contract, so same-seed runs allocate the
    same ids. *)

val with_span :
  sink -> time:int -> pid:int -> ?lane:int -> string ->
  (unit -> 'a) -> time_end:(unit -> int) -> 'a
(** [with_span sink ~time ~pid name f ~time_end] emits a balanced
    [Span_begin]/[Span_end] pair around [f] (the end also on exceptions);
    [time_end] is consulted after [f] since simulated time may advance
    during it. *)

val length : sink -> int
val clear : sink -> unit
val iter : (record -> unit) -> sink -> unit
val records : sink -> record list

val event_name : event -> string
(** Dotted layer-qualified name, e.g. ["net.send"] or ["engine.fire"];
    spans and marks answer their own name. *)

(** {2 Process-wide default sink}

    Layers that create their own engines deep inside a run (scenarios,
    experiment sweeps) pick the default sink up at engine creation, so a
    CLI flag can enable tracing without threading a value through every
    constructor. Not domain-safe: callers that enable a default sink must
    keep the run single-domain (see [Psn_util.Parallel.set_sequential]). *)

val set_default : sink option -> unit
val default : unit -> sink option

val with_default : sink -> (unit -> 'a) -> 'a
(** [with_default s f] installs [s], runs [f], and restores the previous
    default even on exceptions. *)
