(** JSONL trace import: the inverse of {!Export}'s JSONL writer.

    Parses the one-object-per-line format back into typed
    {!Trace.record}s so post-hoc tools ({!Analyze}, the [psn-sim
    analyze] subcommand) can consume a trace file written by an earlier
    run.  A record survives an export/import round trip exactly; the
    importer is strict about the fields it needs and rejects lines it
    cannot type rather than guessing. *)

val record_of_line : string -> (Trace.record, string) result
(** Parse one JSONL line.  The error is a human-readable reason
    (unknown type, missing field, malformed JSON). *)

val iter_file : (Trace.record -> unit) -> string -> (int, string) result
(** Stream a JSONL trace file through [f] in file order, skipping blank
    lines.  [Ok n] is the number of records fed; [Error] prefixes the
    1-based line number of the offending line.  Raises [Sys_error] when
    the file cannot be opened. *)
