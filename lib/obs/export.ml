(* Trace exporters.

   JSONL: one object per record with a stable field order — cheap to
   grep, cheap to diff, and the determinism tests compare these bytes.

   Chrome trace_event: the "JSON Object Format" variant understood by
   Perfetto and chrome://tracing. Every record becomes an instant event
   ("ph":"i") on its process's track; sim-time nanoseconds become the
   format's microseconds with three decimals, so nothing is rounded
   away. *)

let args_of_event ev =
  match (ev : Trace.event) with
  | Engine_schedule { at } -> [ ("at_ns", Printf.sprintf "%d" at) ]
  | Engine_fire | Engine_cancel -> []
  | Net_send { src; dst; words; kind } ->
      [
        ("src", string_of_int src);
        ("dst", string_of_int dst);
        ("words", string_of_int words);
        ("kind", Printf.sprintf "%S" kind);
      ]
  | Net_deliver { src; dst; kind } | Net_drop { src; dst; kind } ->
      [
        ("src", string_of_int src);
        ("dst", string_of_int dst);
        ("kind", Printf.sprintf "%S" kind);
      ]
  | Clock_tick { clock } | Clock_receive { clock } | Clock_strobe { clock } ->
      [ ("clock", Printf.sprintf "%S" clock) ]
  | Detector_update { var; seq } ->
      [ ("var", Printf.sprintf "%S" var); ("update_seq", string_of_int seq) ]
  | Detector_occurrence { verdict } ->
      [ ("verdict", Printf.sprintf "%S" verdict) ]
  | Mark _ -> []

(* The args above pre-render values; keys are plain identifiers, and the
   only string values pass through %S, whose escaping coincides with JSON
   for the identifiers and labels used here. *)
let add_args buf args =
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Buffer.add_string buf k;
      Buffer.add_string buf "\":";
      Buffer.add_string buf v)
    args

let type_name ev =
  match (ev : Trace.event) with Mark _ -> "mark" | ev -> Trace.event_name ev

let jsonl_record buf (r : Trace.record) =
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\":%d,\"t_ns\":%d,\"pid\":%d,\"type\":\"%s\"" r.seq
       r.time r.pid (type_name r.event));
  (match r.event with
  | Mark { name } ->
      Buffer.add_string buf ",\"name\":";
      Json.escape_to_buffer buf name
  | _ -> ());
  add_args buf (args_of_event r.event);
  Buffer.add_string buf "}\n"

let jsonl_to_buffer buf sink = Trace.iter (jsonl_record buf) sink

let jsonl_string sink =
  let buf = Buffer.create 4096 in
  jsonl_to_buffer buf sink;
  Buffer.contents buf

let write_jsonl oc sink =
  let buf = Buffer.create 4096 in
  jsonl_to_buffer buf sink;
  Buffer.output_buffer oc buf

(* --- Chrome trace_event ------------------------------------------------ *)

(* Track id: engine events ([pid] = -1) on chrome pid 0, process i on
   chrome pid i+1, so every pid is non-negative as the format requires. *)
let chrome_pid pid = pid + 1

let chrome_to_buffer buf sink =
  Buffer.add_string buf "{\"traceEvents\":[";
  (* Name the tracks: one metadata event per distinct pid, in order. *)
  let pids = Hashtbl.create 16 in
  Trace.iter (fun r -> Hashtbl.replace pids r.Trace.pid ()) sink;
  let sorted_pids =
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pids [])
  in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n"
  in
  List.iter
    (fun pid ->
      let name = if pid = Trace.engine_pid then "engine" else Printf.sprintf "proc %d" pid in
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
           (chrome_pid pid) name))
    sorted_pids;
  Trace.iter
    (fun (r : Trace.record) ->
      sep ();
      let ts_us = Printf.sprintf "%d.%03d" (r.time / 1000) (r.time mod 1000) in
      Buffer.add_string buf "{\"name\":";
      Json.escape_to_buffer buf (Trace.event_name r.event);
      Buffer.add_string buf
        (Printf.sprintf
           ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"seq\":%d"
           ts_us (chrome_pid r.pid) r.seq);
      add_args buf (args_of_event r.event);
      Buffer.add_string buf "}}")
    sink;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let chrome_string sink =
  let buf = Buffer.create 4096 in
  chrome_to_buffer buf sink;
  Buffer.contents buf

let write_chrome oc sink =
  let buf = Buffer.create 4096 in
  chrome_to_buffer buf sink;
  Buffer.output_buffer oc buf
