(* Trace exporters.

   JSONL: one object per record with a stable field order — cheap to
   grep, cheap to diff, and the determinism tests compare these bytes.

   Chrome trace_event: the "JSON Object Format" variant understood by
   Perfetto and chrome://tracing.  The mapping:

   - instant records become instant events ("ph":"i") on their process's
     track;
   - [Span_begin]/[Span_end] become duration events ("B"/"E"); the span's
     lane is the Chrome tid, so lane-0 spans (contained in one engine
     event) and lane-1 spans (crossing engine events) cannot break each
     other's nesting;
   - [Net_send]/[Net_deliver] become thin complete slices ("X", 1ns) with
     a flow-start ("s") / flow-finish ("f") pair bound to them and keyed
     by the message's correlation id, which is what makes Perfetto draw
     the send -> deliver arrow between process tracks;
   - [Detector_occurrence] with a non-zero window becomes a complete
     slice spanning [detect - window, detect] on the window lane: the
     sense-to-detect latency as a visible duration;
   - timeline samples (when a timeline is passed) become counter events
     ("C"), one per instrument per sample, on the engine track — Perfetto
     renders one counter track per instrument name.

   Sim-time nanoseconds become the format's microseconds with three
   decimals, so nothing is rounded away. *)

let args_of_event ev =
  match (ev : Trace.event) with
  | Engine_schedule { at } -> [ ("at_ns", Printf.sprintf "%d" at) ]
  | Engine_fire | Engine_cancel -> []
  | Span_begin { lane; _ } | Span_end { lane; _ } ->
      [ ("lane", string_of_int lane) ]
  | Net_send { src; dst; words; kind; flow } ->
      [
        ("src", string_of_int src);
        ("dst", string_of_int dst);
        ("words", string_of_int words);
        ("kind", Printf.sprintf "%S" kind);
        ("flow", string_of_int flow);
      ]
  | Net_deliver { src; dst; kind; flow } | Net_drop { src; dst; kind; flow } ->
      [
        ("src", string_of_int src);
        ("dst", string_of_int dst);
        ("kind", Printf.sprintf "%S" kind);
        ("flow", string_of_int flow);
      ]
  | Clock_tick { clock } | Clock_receive { clock } | Clock_strobe { clock } ->
      [ ("clock", Printf.sprintf "%S" clock) ]
  | Detector_update { var; seq } ->
      [ ("var", Printf.sprintf "%S" var); ("update_seq", string_of_int seq) ]
  | Detector_occurrence { verdict; window_ns } ->
      [
        ("verdict", Printf.sprintf "%S" verdict);
        ("window_ns", string_of_int window_ns);
      ]
  | Lattice_commit { level; live; committed } ->
      [
        ("level", string_of_int level);
        ("live", string_of_int live);
        ("committed", string_of_int committed);
      ]
  | Mark _ -> []

(* The args above pre-render values; keys are plain identifiers, and the
   only string values pass through %S, whose escaping coincides with JSON
   for the identifiers and labels used here. *)
let add_args buf args =
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Buffer.add_string buf k;
      Buffer.add_string buf "\":";
      Buffer.add_string buf v)
    args

let type_name ev =
  match (ev : Trace.event) with
  | Mark _ -> "mark"
  | Span_begin _ -> "span.begin"
  | Span_end _ -> "span.end"
  | ev -> Trace.event_name ev

(* Everything after the sequence number: the seq-independent body shared
   by the straight serializer and the canonical merge below. *)
let jsonl_body buf (r : Trace.record) =
  Buffer.add_string buf
    (Printf.sprintf "\"t_ns\":%d,\"pid\":%d,\"type\":\"%s\"" r.time r.pid
       (type_name r.event));
  (match r.event with
  | Mark { name } | Span_begin { name; _ } | Span_end { name; _ } ->
      Buffer.add_string buf ",\"name\":";
      Json.escape_to_buffer buf name
  | _ -> ());
  add_args buf (args_of_event r.event);
  Buffer.add_string buf "}\n"

let jsonl_record buf (r : Trace.record) =
  Buffer.add_string buf (Printf.sprintf "{\"seq\":%d," r.seq);
  jsonl_body buf r

let jsonl_to_buffer buf sink = Trace.iter (jsonl_record buf) sink

let jsonl_string sink =
  let buf = Buffer.create 4096 in
  jsonl_to_buffer buf sink;
  Buffer.contents buf

let write_jsonl oc sink =
  let buf = Buffer.create 4096 in
  jsonl_to_buffer buf sink;
  Buffer.output_buffer oc buf

(* Canonical merge of per-shard sinks: records are ordered by
   (time, pid, rendered body) — keys a substrate cannot perturb — and
   re-sequenced, so the merged artifact of a sharded run is
   byte-identical to the single-queue oracle's whenever the two runs
   emitted the same record multiset.  Per-sink sequence numbers are
   deliberately dropped: they encode arrival interleaving, which is the
   one thing the window barrier is allowed to reorder among equal-time
   events. *)
let merged_jsonl sinks =
  let bodies =
    List.concat_map
      (fun sink ->
        List.map
          (fun (r : Trace.record) ->
            let b = Buffer.create 64 in
            jsonl_body b r;
            (r.time, r.pid, Buffer.contents b))
          (Trace.records sink))
      sinks
  in
  let sorted =
    List.sort
      (fun (t1, p1, b1) (t2, p2, b2) ->
        let c = compare (t1 : int) t2 in
        if c <> 0 then c
        else
          let c = compare (p1 : int) p2 in
          if c <> 0 then c else String.compare b1 b2)
      bodies
  in
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i (_, _, body) ->
      Buffer.add_string buf (Printf.sprintf "{\"seq\":%d," i);
      Buffer.add_string buf body)
    sorted;
  Buffer.contents buf

(* --- timeline JSONL ---------------------------------------------------- *)

let timeline_jsonl_to_buffer buf timeline =
  List.iter
    (fun (s : Metrics.sample) ->
      let values =
        List.map (fun (k, v) -> (k, Json.Float v)) s.Metrics.s_values
      in
      Json.to_buffer buf
        (Json.Obj
           [ ("t_ns", Json.Int s.Metrics.s_time_ns); ("values", Json.Obj values) ]);
      Buffer.add_char buf '\n')
    (Metrics.timeline_samples timeline)

let timeline_jsonl_string timeline =
  let buf = Buffer.create 4096 in
  timeline_jsonl_to_buffer buf timeline;
  Buffer.contents buf

let write_timeline_jsonl oc timeline =
  let buf = Buffer.create 4096 in
  timeline_jsonl_to_buffer buf timeline;
  Buffer.output_buffer oc buf

(* --- Chrome trace_event ------------------------------------------------ *)

(* Track id: engine events ([pid] = -1) on chrome pid 0, process i on
   chrome pid i+1, so every pid is non-negative as the format requires. *)
let chrome_pid pid = pid + 1

let ts_us_of_ns ns = Printf.sprintf "%d.%03d" (ns / 1000) (abs ns mod 1000)

(* A thin slice plus its flow endpoint.  Flow events pair up by (cat,
   name, id); "bp":"e" binds the finish to the enclosing slice, which is
   the X slice emitted at the same timestamp. *)
let chrome_flow_slice buf ~sep ~slice_name ~phase ~ts_us ~cpid ~tid ~flow ~seq
    ~args =
  sep ();
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":0.001,\"pid\":%d,\"tid\":%d,\"args\":{\"seq\":%d"
       slice_name ts_us cpid tid seq);
  add_args buf args;
  Buffer.add_string buf "}}";
  sep ();
  let bp = match phase with "f" -> ",\"bp\":\"e\"" | _ -> "" in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"msg\",\"cat\":\"net\",\"ph\":\"%s\"%s,\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}"
       phase bp flow ts_us cpid tid)

(* One trace record as Chrome events.  [tid_base] offsets every thread
   id, so per-group sinks of a sharded run can render side by side —
   shard g owns the tid block starting at its base — while the
   single-sink export keeps base 0 and its historical bytes. *)
let chrome_record ~tid_base buf sep (r : Trace.record) =
  let ts_us = ts_us_of_ns r.time in
  let cpid = chrome_pid r.pid in
  match r.event with
  | Span_begin { name; lane } | Span_end { name; lane } ->
      let ph = match r.event with Span_begin _ -> "B" | _ -> "E" in
      sep ();
      Buffer.add_string buf "{\"name\":";
      Json.escape_to_buffer buf name;
      Buffer.add_string buf
        (Printf.sprintf
           ",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"seq\":%d}}"
           ph ts_us cpid (tid_base + lane) r.seq)
  | Net_send { flow; _ } ->
      chrome_flow_slice buf ~sep ~slice_name:"net.send" ~phase:"s" ~ts_us
        ~cpid ~tid:tid_base ~flow ~seq:r.seq ~args:(args_of_event r.event)
  | Net_deliver { flow; _ } ->
      chrome_flow_slice buf ~sep ~slice_name:"net.deliver" ~phase:"f" ~ts_us
        ~cpid ~tid:tid_base ~flow ~seq:r.seq ~args:(args_of_event r.event)
  | Net_drop { flow; _ } ->
      (* A drop still finishes its flow: without the "f" endpoint the
         send's "s" arrow dangles (Perfetto hides it) and the loss is
         invisible.  The arrow lands on a thin net.drop slice at the
         receiver, so dropped messages read exactly like deliveries
         that died at the medium. *)
      chrome_flow_slice buf ~sep ~slice_name:"net.drop" ~phase:"f" ~ts_us
        ~cpid ~tid:tid_base ~flow ~seq:r.seq ~args:(args_of_event r.event)
  | Detector_occurrence { window_ns; _ } when window_ns > 0 ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"detector.occurrence\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"seq\":%d"
           (ts_us_of_ns (r.time - window_ns))
           (ts_us_of_ns window_ns) cpid (tid_base + Trace.lane_window) r.seq);
      add_args buf (args_of_event r.event);
      Buffer.add_string buf "}}"
  | _ ->
      sep ();
      Buffer.add_string buf "{\"name\":";
      Json.escape_to_buffer buf (Trace.event_name r.event);
      Buffer.add_string buf
        (Printf.sprintf
           ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"seq\":%d"
           ts_us cpid tid_base r.seq);
      add_args buf (args_of_event r.event);
      Buffer.add_string buf "}}"

let process_name_row buf ~cpid ~name =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
       cpid name)

let chrome_to_buffer ?timeline buf sink =
  Buffer.add_string buf "{\"traceEvents\":[";
  (* Name the tracks: one metadata event per distinct pid, in order. *)
  let pids = Hashtbl.create 16 in
  Trace.iter (fun r -> Hashtbl.replace pids r.Trace.pid ()) sink;
  if timeline <> None then Hashtbl.replace pids Trace.engine_pid ();
  let sorted_pids =
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pids [])
  in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n"
  in
  List.iter
    (fun pid ->
      let name = if pid = Trace.engine_pid then "engine" else Printf.sprintf "proc %d" pid in
      sep ();
      process_name_row buf ~cpid:(chrome_pid pid) ~name)
    sorted_pids;
  Trace.iter (chrome_record ~tid_base:0 buf sep) sink;
  (match timeline with
  | None -> ()
  | Some tl ->
      List.iter
        (fun (s : Metrics.sample) ->
          let ts_us = ts_us_of_ns s.Metrics.s_time_ns in
          List.iter
            (fun (name, v) ->
              sep ();
              Buffer.add_string buf "{\"name\":";
              Json.escape_to_buffer buf name;
              Buffer.add_string buf
                (Printf.sprintf ",\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"args\":{\"value\":"
                   ts_us (chrome_pid Trace.engine_pid));
              Json.to_buffer buf (Json.Float v);
              Buffer.add_string buf "}}")
            s.Metrics.s_values)
        (Metrics.timeline_samples tl));
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let chrome_string ?timeline sink =
  let buf = Buffer.create 4096 in
  chrome_to_buffer ?timeline buf sink;
  Buffer.contents buf

let write_chrome ?timeline oc sink =
  let buf = Buffer.create 4096 in
  chrome_to_buffer ?timeline buf sink;
  Buffer.output_buffer oc buf

(* --- merged Chrome export for per-group sinks --------------------------- *)

(* One Chrome document for the per-group sinks of a sharded run.  The
   single-sink export maps a span's lane straight to the Chrome tid, so
   merging per-group sinks naively would collide every group onto lanes
   0/1.  Here sink [g] renders into its own tid block
   [g * stride + lane], with [stride] wide enough for the deepest lane
   any sink used — a deterministic shard-id -> tid mapping.  Emission
   order is sinks in list order, records in emission order, so the
   bytes are a pure function of the sink contents. *)
let merged_chrome_to_buffer buf sinks =
  Buffer.add_string buf "{\"traceEvents\":[";
  let pids = Hashtbl.create 16 in
  let max_lane = ref (Trace.lane_window + 1) in
  List.iter
    (fun sink ->
      Trace.iter
        (fun (r : Trace.record) ->
          Hashtbl.replace pids r.pid ();
          match r.event with
          | Span_begin { lane; _ } | Span_end { lane; _ } ->
              if lane + 1 > !max_lane then max_lane := lane + 1
          | _ -> ())
        sink)
    sinks;
  let stride = !max_lane in
  let sorted_pids =
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pids [])
  in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n"
  in
  List.iter
    (fun pid ->
      let name =
        if pid = Trace.engine_pid then "engine"
        else Printf.sprintf "proc %d" pid
      in
      sep ();
      process_name_row buf ~cpid:(chrome_pid pid) ~name)
    sorted_pids;
  List.iteri
    (fun g sink ->
      Trace.iter (chrome_record ~tid_base:(g * stride) buf sep) sink)
    sinks;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let merged_chrome sinks =
  let buf = Buffer.create 4096 in
  merged_chrome_to_buffer buf sinks;
  Buffer.contents buf

let write_merged_chrome oc sinks =
  let buf = Buffer.create 4096 in
  merged_chrome_to_buffer buf sinks;
  Buffer.output_buffer oc buf

(* --- shard-window Gantt from Shard_stats -------------------------------- *)

(* Host-time Gantt of a sharded run: coordinator barrier work on pid 0
   (drain and fold slices), each shard's per-window busy time on pid
   s + 1, and a flow arrow per (src, dst) pair that exchanged mail
   across a barrier.  The time axis is a synthetic host-ns cursor —
   slices are laid end to end in execution order (drain, fold, then the
   parallel region), which is exactly the serial/parallel structure the
   Amdahl analysis attributes.  Deterministic given the stats values,
   so hand-built stats golden cleanly. *)
let shard_chrome_to_buffer buf st =
  let k = Shard_stats.shards st in
  let n = Shard_stats.windows st in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n"
  in
  sep ();
  process_name_row buf ~cpid:0 ~name:"coordinator";
  for s = 0 to k - 1 do
    sep ();
    process_name_row buf ~cpid:(s + 1) ~name:(Printf.sprintf "shard %d" s)
  done;
  let slice ~name ~ts ~dur ~cpid ~args =
    sep ();
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"window\":%d"
         name (ts_us_of_ns ts) (ts_us_of_ns dur) cpid (fst args));
    add_args buf (snd args);
    Buffer.add_string buf "}}"
  in
  let cursor = ref 0 in
  let prev_par_start = ref 0 in
  let prev_busy = Array.make k 0 in
  for w = 0 to n - 1 do
    let drain = Shard_stats.drain_ns st w in
    let fold = Shard_stats.fold_ns st w in
    slice ~name:"barrier.drain" ~ts:!cursor ~dur:drain ~cpid:0
      ~args:
        ( w,
          [
            ("msgs", string_of_int (Shard_stats.mail_msgs st w));
            ("ints", string_of_int (Shard_stats.mail_ints st w));
          ] );
    cursor := !cursor + drain;
    slice ~name:"barrier.fold" ~ts:!cursor ~dur:fold ~cpid:0 ~args:(w, []);
    cursor := !cursor + fold;
    let par_start = !cursor in
    for s = 0 to k - 1 do
      slice ~name:"window" ~ts:par_start
        ~dur:(Shard_stats.busy_ns st w ~shard:s)
        ~cpid:(s + 1)
        ~args:
          ( w,
            [
              ("events", string_of_int (Shard_stats.events st w ~shard:s));
              ( "limit",
                Printf.sprintf "%S"
                  (Shard_stats.limit_to_string (Shard_stats.limit st w)) );
              ("start_ns", string_of_int (Shard_stats.start_ns st w));
              ("end_ns", string_of_int (Shard_stats.end_ns st w));
            ] )
    done;
    (* Mail drained at this barrier was posted during the previous
       window: arrow from the sender's previous slice to the receiver's
       current one. *)
    if w > 0 then
      for src = 0 to k - 1 do
        for dst = 0 to k - 1 do
          let msgs = Shard_stats.traffic st w ~src ~dst in
          if msgs > 0 then begin
            let flow = (((w * k) + src) * k) + dst in
            let args = [ ("msgs", string_of_int msgs) ] in
            chrome_flow_slice buf ~sep ~slice_name:"mail.out" ~phase:"s"
              ~ts_us:(ts_us_of_ns (!prev_par_start + prev_busy.(src)))
              ~cpid:(src + 1) ~tid:0 ~flow ~seq:w ~args;
            chrome_flow_slice buf ~sep ~slice_name:"mail.in" ~phase:"f"
              ~ts_us:(ts_us_of_ns par_start) ~cpid:(dst + 1) ~tid:0 ~flow
              ~seq:w ~args
          end
        done
      done;
    for s = 0 to k - 1 do
      prev_busy.(s) <- Shard_stats.busy_ns st w ~shard:s
    done;
    prev_par_start := par_start;
    cursor := !cursor + Shard_stats.par_ns st w
  done;
  let ep_drain = Shard_stats.epilogue_drain_ns st in
  let ep_fold = Shard_stats.epilogue_fold_ns st in
  if ep_drain > 0 || ep_fold > 0 then begin
    slice ~name:"barrier.drain" ~ts:!cursor ~dur:ep_drain ~cpid:0
      ~args:
        (n, [ ("msgs", string_of_int (Shard_stats.epilogue_mail_msgs st)) ]);
    cursor := !cursor + ep_drain;
    slice ~name:"barrier.fold" ~ts:!cursor ~dur:ep_fold ~cpid:0 ~args:(n, [])
  end;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let shard_chrome_string st =
  let buf = Buffer.create 4096 in
  shard_chrome_to_buffer buf st;
  Buffer.contents buf

let write_shard_chrome oc st =
  let buf = Buffer.create 4096 in
  shard_chrome_to_buffer buf st;
  Buffer.output_buffer oc buf
