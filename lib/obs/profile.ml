(* Host-time scoped profiler with GC telemetry.

   Everything else in this library measures *simulated* time; this module
   is the one deliberate exception.  [with_phase] brackets a thunk with
   the host's monotonic clock (bechamel's CLOCK_MONOTONIC stub — the same
   clock the benchmarks use) and [Gc.quick_stat], and accumulates the
   deltas per phase name.  Host readings never enter a trace sink or a
   metrics registry: they live only in the profile artifact, so the
   same-seed byte-identity of traces is untouched by profiling.

   Phases aggregate by name (a phase entered in a loop sums), keep
   first-entry order, and may nest — a nested phase's cost is counted in
   its enclosing phase too, like any wall-clock profiler. *)

type phase = {
  name : string;
  count : int;
  wall_ns : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

type acc = {
  mutable a_count : int;
  mutable a_wall_ns : int;
  mutable a_minor_words : float;
  mutable a_promoted_words : float;
  mutable a_major_words : float;
  mutable a_minor_collections : int;
  mutable a_major_collections : int;
  mutable a_compactions : int;
}

type t = {
  mutable order : string list;  (* reversed first-entry order *)
  table : (string, acc) Hashtbl.t;
}

let create () = { order = []; table = Hashtbl.create 16 }

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let acc_of t name =
  match Hashtbl.find_opt t.table name with
  | Some a -> a
  | None ->
      let a =
        { a_count = 0; a_wall_ns = 0; a_minor_words = 0.0;
          a_promoted_words = 0.0; a_major_words = 0.0;
          a_minor_collections = 0; a_major_collections = 0;
          a_compactions = 0 }
      in
      Hashtbl.replace t.table name a;
      t.order <- name :: t.order;
      a

(* [Gc.quick_stat] only refreshes [minor_words] at minor collections, so
   a phase that allocates less than a minor heap would report zero;
   [Gc.minor_words ()] reads the live allocation pointer instead. *)
let with_phase t name f =
  let a = acc_of t name in
  let g0 = Gc.quick_stat () in
  let mw0 = Gc.minor_words () in
  let t0 = now_ns () in
  let record () =
    let t1 = now_ns () in
    let mw1 = Gc.minor_words () in
    let g1 = Gc.quick_stat () in
    a.a_count <- a.a_count + 1;
    a.a_wall_ns <- a.a_wall_ns + (t1 - t0);
    a.a_minor_words <- a.a_minor_words +. (mw1 -. mw0);
    a.a_promoted_words <-
      a.a_promoted_words +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
    a.a_major_words <- a.a_major_words +. (g1.Gc.major_words -. g0.Gc.major_words);
    a.a_minor_collections <-
      a.a_minor_collections + (g1.Gc.minor_collections - g0.Gc.minor_collections);
    a.a_major_collections <-
      a.a_major_collections + (g1.Gc.major_collections - g0.Gc.major_collections);
    a.a_compactions <- a.a_compactions + (g1.Gc.compactions - g0.Gc.compactions)
  in
  Fun.protect ~finally:record f

let phases t =
  List.rev_map
    (fun name ->
      let a = Hashtbl.find t.table name in
      {
        name;
        count = a.a_count;
        wall_ns = a.a_wall_ns;
        minor_words = a.a_minor_words;
        promoted_words = a.a_promoted_words;
        major_words = a.a_major_words;
        minor_collections = a.a_minor_collections;
        major_collections = a.a_major_collections;
        compactions = a.a_compactions;
      })
    t.order

(* Schema "psn-profile/1": field order fixed, so two profiles of the same
   run shape diff line-for-line (the values are host readings and differ
   run to run — that is the point of the artifact). *)
let to_json t =
  let phase_json p =
    Json.Obj
      [
        ("name", Json.Str p.name);
        ("count", Json.Int p.count);
        ("wall_ns", Json.Int p.wall_ns);
        ("minor_words", Json.Float p.minor_words);
        ("promoted_words", Json.Float p.promoted_words);
        ("major_words", Json.Float p.major_words);
        ("minor_collections", Json.Int p.minor_collections);
        ("major_collections", Json.Int p.major_collections);
        ("compactions", Json.Int p.compactions);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "psn-profile/1");
         ("unit", Json.Str "ns");
         ("phases", Json.List (List.map phase_json (phases t)));
       ])

let pp ppf t =
  Fmt.pf ppf "%-32s %5s %12s %14s %14s %6s %6s@." "phase" "n" "wall ms"
    "minor words" "major words" "min gc" "maj gc";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-32s %5d %12.3f %14.0f %14.0f %6d %6d@." p.name p.count
        (float_of_int p.wall_ns /. 1e6)
        p.minor_words p.major_words p.minor_collections p.major_collections)
    (phases t)

(* Process-wide default, mirroring [Trace.default]: experiment internals
   call [phase] unconditionally; it costs two clock reads only when a
   profile is installed. *)
let default_profile : t option ref = ref None
let set_default p = default_profile := p
let default () = !default_profile

let with_default p f =
  let saved = !default_profile in
  default_profile := Some p;
  Fun.protect ~finally:(fun () -> default_profile := saved) f

let phase name f =
  match !default_profile with Some p -> with_phase p name f | None -> f ()
