(* JSONL trace import.

   Inverts [Export.jsonl_record]: every line is a flat object with
   [seq]/[t_ns]/[pid]/[type] plus the event's own fields.  The importer
   only trusts the fields it needs, so traces written by future exporters
   with extra fields still load. *)

let int_field obj name =
  match Json.member name obj with
  | Some (Json.Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field obj name =
  match Json.member name obj with
  | Some (Json.Str v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let net_fields obj =
  let* src = int_field obj "src" in
  let* dst = int_field obj "dst" in
  let* kind = str_field obj "kind" in
  let* flow = int_field obj "flow" in
  Ok (src, dst, kind, flow)

let event_of obj ty : (Trace.event, string) result =
  match ty with
  | "engine.schedule" ->
      let* at = int_field obj "at_ns" in
      Ok (Trace.Engine_schedule { at })
  | "engine.fire" -> Ok Trace.Engine_fire
  | "engine.cancel" -> Ok Trace.Engine_cancel
  | "span.begin" ->
      let* name = str_field obj "name" in
      let* lane = int_field obj "lane" in
      Ok (Trace.Span_begin { name; lane })
  | "span.end" ->
      let* name = str_field obj "name" in
      let* lane = int_field obj "lane" in
      Ok (Trace.Span_end { name; lane })
  | "net.send" ->
      let* src, dst, kind, flow = net_fields obj in
      let* words = int_field obj "words" in
      Ok (Trace.Net_send { src; dst; words; kind; flow })
  | "net.deliver" ->
      let* src, dst, kind, flow = net_fields obj in
      Ok (Trace.Net_deliver { src; dst; kind; flow })
  | "net.drop" ->
      let* src, dst, kind, flow = net_fields obj in
      Ok (Trace.Net_drop { src; dst; kind; flow })
  | "clock.tick" ->
      let* clock = str_field obj "clock" in
      Ok (Trace.Clock_tick { clock })
  | "clock.receive" ->
      let* clock = str_field obj "clock" in
      Ok (Trace.Clock_receive { clock })
  | "clock.strobe" ->
      let* clock = str_field obj "clock" in
      Ok (Trace.Clock_strobe { clock })
  | "detector.update" ->
      let* var = str_field obj "var" in
      let* seq = int_field obj "update_seq" in
      Ok (Trace.Detector_update { var; seq })
  | "detector.occurrence" ->
      let* verdict = str_field obj "verdict" in
      let* window_ns = int_field obj "window_ns" in
      Ok (Trace.Detector_occurrence { verdict; window_ns })
  | "lattice.commit" ->
      let* level = int_field obj "level" in
      let* live = int_field obj "live" in
      let* committed = int_field obj "committed" in
      Ok (Trace.Lattice_commit { level; live; committed })
  | "mark" ->
      let* name = str_field obj "name" in
      Ok (Trace.Mark { name })
  | ty -> Error (Printf.sprintf "unknown record type %S" ty)

let record_of_line line : (Trace.record, string) result =
  let* obj = Json.of_string line in
  let* seq = int_field obj "seq" in
  let* time = int_field obj "t_ns" in
  let* pid = int_field obj "pid" in
  let* ty = str_field obj "type" in
  let* event = event_of obj ty in
  Ok { Trace.seq; time; pid; event }

let iter_file f path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno count =
        match input_line ic with
        | exception End_of_file -> Ok count
        | "" -> go (lineno + 1) count
        | line -> (
            match record_of_line line with
            | Ok r ->
                f r;
                go (lineno + 1) (count + 1)
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
      in
      go 1 0)
