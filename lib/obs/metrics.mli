(** Registry of named counters, gauges, and histograms.

    A registry is created per run (the engine owns one), so metrics never
    leak across runs. Instruments are get-or-create by name: the handle
    returned is a direct mutable cell, so the hot path pays one field
    update, not a name lookup. Snapshots are sorted by name and serialize
    to/from JSON losslessly. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create. Raises [Invalid_argument] if the name is already
    registered as a different instrument kind. *)

val incr : ?by:int -> counter -> unit

val tick : counter -> unit
(** [incr] by one without the optional-argument dispatch; for
    instrumented hot loops. *)

val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?lo:float -> ?hi:float -> ?bins:int -> string -> histogram
(** Fixed-range histogram backed by [Psn_util.Stats.histogram]; defaults
    [lo=0., hi=1000., bins=20]. Bounds are fixed at first creation; later
    get-or-create calls ignore them. *)

val observe : histogram -> float -> unit

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      lo : float;
      hi : float;
      counts : int array;
      underflow : int;
      overflow : int;
    }

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every instrument, keeping registrations (and histogram bounds). *)

val empty_snapshot : snapshot

val find : snapshot -> string -> value option
val get_counter : snapshot -> string -> int
(** 0 when absent or not a counter. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val snapshot_to_json : snapshot -> string
val snapshot_of_json : string -> (snapshot, string) result
(** [snapshot_of_json (snapshot_to_json s) = Ok s]. *)
