(** Registry of named counters, gauges, and histograms.

    A registry is created per run (the engine owns one), so metrics never
    leak across runs. Instruments are get-or-create by name: the handle
    returned is a direct mutable cell, so the hot path pays one field
    update, not a name lookup. Snapshots are sorted by name and serialize
    to/from JSON losslessly. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create. Raises [Invalid_argument] if the name is already
    registered as a different instrument kind. *)

val incr : ?by:int -> counter -> unit

val tick : counter -> unit
(** [incr] by one without the optional-argument dispatch; for
    instrumented hot loops. *)

val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?lo:float -> ?hi:float -> ?bins:int -> string -> histogram
(** Fixed-range histogram backed by [Psn_util.Stats.histogram]; defaults
    [lo=0., hi=1000., bins=20]. Bounds are fixed at first creation; a
    later get-or-create of the same name must request the same bounds —
    a mismatch raises [Invalid_argument] rather than silently keeping the
    original range and misbinning the caller's samples. *)

val observe : histogram -> float -> unit

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      lo : float;
      hi : float;
      counts : int array;
      underflow : int;
      overflow : int;
    }

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every instrument, keeping registrations (and histogram bounds). *)

val empty_snapshot : snapshot

val merge_snapshots : snapshot list -> snapshot
(** Deterministic union: counters sum, histogram bins/overflows sum
    (bounds must agree), gauges take the last writer in list order.
    Merging the per-shard registries of a sharded run must reproduce the
    single-run snapshot, so sharded layers register only counters and
    histograms.  Raises [Invalid_argument] on instrument-kind or
    histogram-bound mismatches. *)

val find : snapshot -> string -> value option
val get_counter : snapshot -> string -> int
(** 0 when absent or not a counter. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val snapshot_to_json : snapshot -> string
val snapshot_of_json : string -> (snapshot, string) result
(** [snapshot_of_json (snapshot_to_json s) = Ok s]. *)

(** {2 Timeline}

    A metric time series: periodic samples of every registered instrument
    over simulated time, held in a fixed-capacity ring buffer (a full
    ring overwrites the oldest sample).  The registry does not drive the
    sampling — whoever owns the clock does; [Psn_sim.Engine] samples its
    registry every [timeline_period_ns] when a timeline is installed.
    Exported as JSONL and as Chrome counter tracks by [Export]. *)

type timeline

type sample = { s_time_ns : int; s_values : (string * float) list }
(** Values sorted by instrument name: counters and histogram totals as
    floats, gauges verbatim. *)

val timeline_create : ?capacity:int -> period_ns:int -> unit -> timeline
(** Default capacity 4096 samples. Raises on non-positive period or
    capacity. *)

val timeline_period_ns : timeline -> int

val timeline_record : timeline -> time_ns:int -> t -> unit
(** Append one sample of registry [t] at simulated time [time_ns]. *)

val timeline_samples : timeline -> sample list
(** Oldest first; at most [capacity] entries. *)

val timeline_recorded : timeline -> int
(** Total samples ever recorded, including overwritten ones. *)

val timeline_dropped : timeline -> int
(** How many of the recorded samples the ring has overwritten. *)

(** {3 Process-wide default timeline}

    Mirrors [Trace.set_default]: engines created while a default timeline
    is installed sample their registry on its period.  Same caveat: keep
    the run single-domain. *)

val set_default_timeline : timeline option -> unit
val default_timeline : unit -> timeline option

val with_default_timeline : timeline -> (unit -> 'a) -> 'a
(** Installs the timeline, runs the thunk, restores the previous default
    even on exceptions. *)
