(* Streaming causal trace analytics.

   One pass over the record stream, in emission order.  The state is a
   set of fixed-shape tables:

   - a flow-edge ring: flow ids are allocated densely in send order, so
     the ring is indexed by [flow mod cap] between [e_lo] (oldest flow
     still held) and [e_hi] (next expected).  An edge retires when both
     endpoints are seen (deliver or drop) or, with a horizon, when
     sim-time moves past [send + horizon]; the head then advances, so
     the ring span — the analyzer's memory — is bounded by the horizon
     rather than the run length.
   - log-bucketed latency histograms (exact below 8 ns, then power-of-two
     octaves split into 4 linear sub-buckets: resolution within 12.5%),
     one per (src, dst, kind) link plus one overall, and one per
     (span name, lane).  Fixed int arrays, allocation-free to observe.
   - a recent-delivery ring for the checker pid: the candidate pool for
     critical paths, expired on the same horizon.
   - per-kind traffic totals with in-flight high-watermarks, and drop
     counts attributed to links.

   Critical paths: a [Detector_occurrence] carries its sense-to-detect
   window, so the trigger's sense time is [detect - window].  The
   trigger chain is sense -> send (same engine event) -> deliver at the
   checker -> hold-back queue -> flush handler -> occurrence.  Among
   recent checker deliveries whose send time equals the sense time, the
   binding constraint — the critical path — is the latest-arriving one
   (max deliver time, then max flow id, so the choice is deterministic).
   Hops: emit = send - sense, transmit = deliver - send, handler =
   detect - (innermost open sync-lane span begin, the flush), queue =
   the remainder; each clamped non-negative, summing to at most the
   window.  An occurrence with no such delivery (the checker's own
   update, or a trigger whose direct message was dropped or expired) is
   reported unresolved, with the window split into queue + handler.

   Everything here is a deterministic function of (record stream,
   horizon), so post-hoc and online feeding produce byte-identical
   reports at the same horizon. *)

module Table = Psn_util.Table

(* --- log-bucketed histograms ------------------------------------------- *)

let n_buckets = 248

(* Index of the highest set bit; [v] must be positive. *)
let msb v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

let bucket_of_ns v =
  if v < 8 then (if v < 0 then 0 else v)
  else
    let o = msb v in
    (* 4 sub-buckets per octave: the next two bits below the msb. *)
    let sub = (v lsr (o - 2)) land 3 in
    8 + ((o - 3) * 4) + sub

let bucket_lo idx =
  if idx < 8 then idx
  else
    let o = 3 + ((idx - 8) / 4) and sub = (idx - 8) mod 4 in
    (1 lsl o) + (sub lsl (o - 2))

type hist = {
  counts : int array;
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_max : int;
}

let hist_create () =
  { counts = Array.make n_buckets 0; h_n = 0; h_sum = 0; h_max = 0 }

let observe h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of_ns v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

(* Lower bound of the bucket holding rank ceil(pct% of n); the exact max
   for the 100th percentile. *)
let hist_quantile h pct =
  if h.h_n = 0 then 0
  else if pct >= 100 then h.h_max
  else begin
    let target = max 1 (((h.h_n * pct) + 99) / 100) in
    let rec go i acc =
      if i >= n_buckets then h.h_max
      else
        let acc = acc + h.counts.(i) in
        if acc >= target then bucket_lo i else go (i + 1) acc
    in
    go 0 0
  end

(* --- analyzer state ----------------------------------------------------- *)

type quantiles = { q50 : int; q90 : int; q99 : int; q_max : int }

type hop = { h_label : string; h_ns : int }

type path = {
  p_seq : int;
  p_detect_ns : int;
  p_verdict : string;
  p_window_ns : int;
  p_src : int;
  p_flow : int;
  p_hops : hop list;
}

let dummy_path =
  { p_seq = 0; p_detect_ns = 0; p_verdict = ""; p_window_ns = 0; p_src = -1;
    p_flow = -1; p_hops = [] }

type link = {
  l_src : int;
  l_dst : int;
  l_kind : int;
  l_hist : hist;
  mutable l_drops : int;
}

(* Edge states in the flow ring. *)
let st_open = 0
let st_delivered = 1
let st_dropped = 2
let st_absent = 3 (* gap in the id space, or expired by the horizon *)

type t = {
  horizon : int; (* max_int = unbounded *)
  checker : int;
  keep_paths : int;
  (* totals *)
  mutable records : int;
  mutable sends : int;
  mutable delivers : int;
  mutable drops : int;
  mutable late : int; (* endpoint for an edge not (or no longer) open *)
  (* message kinds, interned *)
  kind_ids : (string, int) Hashtbl.t;
  mutable kind_names : string array;
  mutable kinds : int;
  mutable k_sent : int array;
  mutable k_delivered : int array;
  mutable k_dropped : int array;
  mutable k_words : int array;
  mutable k_inflight : int array;
  mutable k_peak : int array;
  (* links *)
  links : (int, link) Hashtbl.t;
  delivery : hist;
  (* spans *)
  span_ids : (string, int) Hashtbl.t;
  mutable span_names : string array;
  mutable span_kinds : int;
  span_stats : (int, hist) Hashtbl.t; (* key = name_id * 4 + lane *)
  open_spans : (int, (int * int) list) Hashtbl.t;
      (* (pid+1)*4 + lane -> (name_id, begin time) stack *)
  (* flow-edge ring; slot = flow mod e_cap *)
  mutable e_cap : int;
  mutable e_lo : int;
  mutable e_hi : int;
  mutable e_send : int array;
  mutable e_src : int array;
  mutable e_dst : int array;
  mutable e_kind : int array;
  mutable e_state : int array;
  mutable open_count : int;
  mutable peak_open : int;
  mutable peak_ring : int;
  mutable matched : int;
  mutable expired : int;
  (* recent deliveries to the checker *)
  mutable d_cap : int;
  mutable d_lo : int;
  mutable d_hi : int;
  mutable d_time : int array;
  mutable d_sendt : int array;
  mutable d_src : int array;
  mutable d_flow : int array;
  mutable d_peak : int;
  (* occurrences / critical paths *)
  mutable occ : int;
  mutable occ_resolved : int;
  mutable sum_emit : int;
  mutable sum_transmit : int;
  mutable sum_queue : int;
  mutable sum_handler : int;
  mutable sum_path : int;
  mutable max_path : int;
  path_ring : path array;
  mutable path_n : int;
  (* streaming-lattice slab occupancy (Lattice_commit records) *)
  mutable lat_commits : int;
  mutable lat_level : int;
  mutable lat_committed : int;
  mutable lat_live_last : int;
  mutable lat_live_peak : int;
}

let create ?horizon_ns ?(checker_pid = 0) ?(keep_paths = 32) () =
  (match horizon_ns with
  | Some h when h <= 0 ->
      invalid_arg "Analyze.create: horizon_ns must be positive"
  | _ -> ());
  if keep_paths <= 0 then invalid_arg "Analyze.create: keep_paths must be positive";
  {
    horizon = (match horizon_ns with Some h -> h | None -> max_int);
    checker = checker_pid;
    keep_paths;
    records = 0;
    sends = 0;
    delivers = 0;
    drops = 0;
    late = 0;
    kind_ids = Hashtbl.create 8;
    kind_names = Array.make 4 "";
    kinds = 0;
    k_sent = Array.make 4 0;
    k_delivered = Array.make 4 0;
    k_dropped = Array.make 4 0;
    k_words = Array.make 4 0;
    k_inflight = Array.make 4 0;
    k_peak = Array.make 4 0;
    links = Hashtbl.create 32;
    delivery = hist_create ();
    span_ids = Hashtbl.create 8;
    span_names = Array.make 4 "";
    span_kinds = 0;
    span_stats = Hashtbl.create 16;
    open_spans = Hashtbl.create 16;
    e_cap = 16;
    e_lo = 0;
    e_hi = 0;
    e_send = Array.make 16 0;
    e_src = Array.make 16 0;
    e_dst = Array.make 16 0;
    e_kind = Array.make 16 0;
    e_state = Array.make 16 st_absent;
    open_count = 0;
    peak_open = 0;
    peak_ring = 0;
    matched = 0;
    expired = 0;
    d_cap = 16;
    d_lo = 0;
    d_hi = 0;
    d_time = Array.make 16 0;
    d_sendt = Array.make 16 0;
    d_src = Array.make 16 0;
    d_flow = Array.make 16 0;
    d_peak = 0;
    occ = 0;
    occ_resolved = 0;
    sum_emit = 0;
    sum_transmit = 0;
    sum_queue = 0;
    sum_handler = 0;
    sum_path = 0;
    max_path = 0;
    path_ring = Array.make keep_paths dummy_path;
    path_n = 0;
    lat_commits = 0;
    lat_level = 0;
    lat_committed = 0;
    lat_live_last = 0;
    lat_live_peak = 0;
  }

(* --- interning ---------------------------------------------------------- *)

let grow_int a n =
  let b = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 b 0 n;
  b

let kind_id t name =
  match Hashtbl.find_opt t.kind_ids name with
  | Some id -> id
  | None ->
      let id = t.kinds in
      if id = Array.length t.kind_names then begin
        let names = Array.make (2 * id) "" in
        Array.blit t.kind_names 0 names 0 id;
        t.kind_names <- names;
        t.k_sent <- grow_int t.k_sent id;
        t.k_delivered <- grow_int t.k_delivered id;
        t.k_dropped <- grow_int t.k_dropped id;
        t.k_words <- grow_int t.k_words id;
        t.k_inflight <- grow_int t.k_inflight id;
        t.k_peak <- grow_int t.k_peak id
      end;
      t.kind_names.(id) <- name;
      t.kinds <- id + 1;
      Hashtbl.add t.kind_ids name id;
      id

let span_id t name =
  match Hashtbl.find_opt t.span_ids name with
  | Some id -> id
  | None ->
      let id = t.span_kinds in
      if id = Array.length t.span_names then begin
        let names = Array.make (2 * id) "" in
        Array.blit t.span_names 0 names 0 id;
        t.span_names <- names
      end;
      t.span_names.(id) <- name;
      t.span_kinds <- id + 1;
      Hashtbl.add t.span_ids name id;
      id

(* 20-bit src/dst, 6-bit kind: collision-free for any run this simulator
   can hold. *)
let link_key ~src ~dst ~kind =
  ((src land 0xFFFFF) lsl 26) lor ((dst land 0xFFFFF) lsl 6) lor (kind land 0x3F)

let link t ~src ~dst ~kind =
  let key = link_key ~src ~dst ~kind in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
      let l = { l_src = src; l_dst = dst; l_kind = kind;
                l_hist = hist_create (); l_drops = 0 } in
      Hashtbl.add t.links key l;
      l

let span_key pid lane = ((pid + 1) * 4) + (lane land 3)

(* --- flow-edge ring ------------------------------------------------------ *)

let edge_grow t need =
  let cap = ref t.e_cap in
  while !cap < need do cap := !cap * 2 done;
  let cap = !cap in
  let send = Array.make cap 0 and src = Array.make cap 0
  and dst = Array.make cap 0 and kind = Array.make cap 0
  and state = Array.make cap st_absent in
  for f = t.e_lo to t.e_hi - 1 do
    let o = f mod t.e_cap and n = f mod cap in
    send.(n) <- t.e_send.(o);
    src.(n) <- t.e_src.(o);
    dst.(n) <- t.e_dst.(o);
    kind.(n) <- t.e_kind.(o);
    state.(n) <- t.e_state.(o)
  done;
  t.e_cap <- cap;
  t.e_send <- send;
  t.e_src <- src;
  t.e_dst <- dst;
  t.e_kind <- kind;
  t.e_state <- state

let edge_push t ~flow ~send_time ~src ~dst ~kind =
  if flow < t.e_lo then t.late <- t.late + 1
  else begin
    if t.e_hi = t.e_lo then begin
      t.e_lo <- flow;
      t.e_hi <- flow
    end;
    if flow + 1 - t.e_lo > t.e_cap then edge_grow t (flow + 1 - t.e_lo);
    (* Gaps in the id space (a filtered trace) stay absent slots. *)
    while t.e_hi < flow do
      t.e_state.(t.e_hi mod t.e_cap) <- st_absent;
      t.e_hi <- t.e_hi + 1
    done;
    let s = flow mod t.e_cap in
    t.e_send.(s) <- send_time;
    t.e_src.(s) <- src;
    t.e_dst.(s) <- dst;
    t.e_kind.(s) <- kind;
    t.e_state.(s) <- st_open;
    if flow >= t.e_hi then t.e_hi <- flow + 1;
    t.open_count <- t.open_count + 1;
    if t.open_count > t.peak_open then t.peak_open <- t.open_count;
    let span = t.e_hi - t.e_lo in
    if span > t.peak_ring then t.peak_ring <- span
  end

(* Close an edge on its deliver/drop; [Some send_time] when it was open. *)
let edge_close t ~flow ~st =
  if flow >= t.e_lo && flow < t.e_hi then begin
    let s = flow mod t.e_cap in
    if t.e_state.(s) = st_open then begin
      t.e_state.(s) <- st;
      t.open_count <- t.open_count - 1;
      t.matched <- t.matched + 1;
      Some t.e_send.(s)
    end
    else begin
      t.late <- t.late + 1;
      None
    end
  end
  else begin
    t.late <- t.late + 1;
    None
  end

(* Advance the ring head over retired slots; with a horizon, expire open
   edges whose send slid past it, and age the checker-delivery window. *)
let retire t ~now =
  let continue = ref true in
  while !continue && t.e_lo < t.e_hi do
    let s = t.e_lo mod t.e_cap in
    if t.e_state.(s) <> st_open then t.e_lo <- t.e_lo + 1
    else if t.horizon <> max_int && t.e_send.(s) + t.horizon < now then begin
      t.e_state.(s) <- st_absent;
      t.expired <- t.expired + 1;
      t.open_count <- t.open_count - 1;
      t.e_lo <- t.e_lo + 1
    end
    else continue := false
  done;
  if t.horizon <> max_int then
    while t.d_lo < t.d_hi && t.d_time.(t.d_lo mod t.d_cap) + t.horizon < now do
      t.d_lo <- t.d_lo + 1
    done

(* --- checker-delivery ring ---------------------------------------------- *)

let deliver_push t ~time ~send_time ~src ~flow =
  if t.d_hi - t.d_lo = t.d_cap then begin
    let cap = 2 * t.d_cap in
    let tm = Array.make cap 0 and sd = Array.make cap 0
    and sr = Array.make cap 0 and fl = Array.make cap 0 in
    for i = t.d_lo to t.d_hi - 1 do
      let o = i mod t.d_cap and n = i mod cap in
      tm.(n) <- t.d_time.(o);
      sd.(n) <- t.d_sendt.(o);
      sr.(n) <- t.d_src.(o);
      fl.(n) <- t.d_flow.(o)
    done;
    t.d_cap <- cap;
    t.d_time <- tm;
    t.d_sendt <- sd;
    t.d_src <- sr;
    t.d_flow <- fl
  end;
  let s = t.d_hi mod t.d_cap in
  t.d_time.(s) <- time;
  t.d_sendt.(s) <- send_time;
  t.d_src.(s) <- src;
  t.d_flow.(s) <- flow;
  t.d_hi <- t.d_hi + 1;
  if t.d_hi - t.d_lo > t.d_peak then t.d_peak <- t.d_hi - t.d_lo

(* --- occurrences --------------------------------------------------------- *)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let occurrence t (r : Trace.record) verdict window =
  t.occ <- t.occ + 1;
  let detect = r.time in
  let window = if window < 0 then 0 else window in
  let sense = detect - window in
  let flush_begin =
    match Hashtbl.find_opt t.open_spans (span_key r.pid Trace.lane_sync) with
    | Some ((_, tb) :: _) -> tb
    | Some [] | None -> detect
  in
  let handler = clamp 0 window (detect - flush_begin) in
  (* The binding trigger chain: latest-arriving checker delivery whose
     send coincides with the occurrence's sense instant. *)
  let best = ref (-1) in
  if r.pid = t.checker then begin
    (* Deliveries arrive in non-decreasing time and a delivery never
       precedes its send, so entries older than [sense] cannot match:
       scan backward and stop there.  The scan is bounded by the
       occurrence window, not the run length. *)
    let i = ref (t.d_hi - 1) in
    while !i >= t.d_lo && t.d_time.(!i mod t.d_cap) >= sense do
      let s = !i mod t.d_cap in
      if t.d_sendt.(s) = sense && t.d_time.(s) <= detect then begin
        if !best < 0 then best := !i
        else begin
          let b = !best mod t.d_cap in
          if
            t.d_time.(s) > t.d_time.(b)
            || (t.d_time.(s) = t.d_time.(b) && t.d_flow.(s) > t.d_flow.(b))
          then best := !i
        end
      end;
      decr i
    done
  end;
  let src, flow, emit_ns, transmit, queue =
    if !best >= 0 then begin
      t.occ_resolved <- t.occ_resolved + 1;
      let s = !best mod t.d_cap in
      let transmit = clamp 0 window (t.d_time.(s) - sense) in
      let queue = max 0 (window - transmit - handler) in
      (t.d_src.(s), t.d_flow.(s), 0, transmit, queue)
    end
    else (-1, -1, 0, 0, max 0 (window - handler))
  in
  let total = emit_ns + transmit + queue + handler in
  t.sum_emit <- t.sum_emit + emit_ns;
  t.sum_transmit <- t.sum_transmit + transmit;
  t.sum_queue <- t.sum_queue + queue;
  t.sum_handler <- t.sum_handler + handler;
  t.sum_path <- t.sum_path + total;
  if total > t.max_path then t.max_path <- total;
  let p =
    {
      p_seq = r.seq;
      p_detect_ns = detect;
      p_verdict = verdict;
      p_window_ns = window;
      p_src = src;
      p_flow = flow;
      p_hops =
        [
          { h_label = "emit"; h_ns = emit_ns };
          { h_label = "transmit"; h_ns = transmit };
          { h_label = "queue"; h_ns = queue };
          { h_label = "handler"; h_ns = handler };
        ];
    }
  in
  t.path_ring.(t.path_n mod t.keep_paths) <- p;
  t.path_n <- t.path_n + 1

(* --- feed ---------------------------------------------------------------- *)

let feed t (r : Trace.record) =
  t.records <- t.records + 1;
  retire t ~now:r.time;
  match r.event with
  | Trace.Net_send { src; dst; words; kind; flow } ->
      let k = kind_id t kind in
      t.sends <- t.sends + 1;
      t.k_sent.(k) <- t.k_sent.(k) + 1;
      t.k_words.(k) <- t.k_words.(k) + words;
      t.k_inflight.(k) <- t.k_inflight.(k) + 1;
      if t.k_inflight.(k) > t.k_peak.(k) then t.k_peak.(k) <- t.k_inflight.(k);
      edge_push t ~flow ~send_time:r.time ~src ~dst ~kind:k
  | Trace.Net_deliver { src; dst; kind; flow } -> (
      let k = kind_id t kind in
      t.delivers <- t.delivers + 1;
      t.k_delivered.(k) <- t.k_delivered.(k) + 1;
      t.k_inflight.(k) <- t.k_inflight.(k) - 1;
      match edge_close t ~flow ~st:st_delivered with
      | Some send_time ->
          let lat = r.time - send_time in
          observe t.delivery lat;
          observe (link t ~src ~dst ~kind:k).l_hist lat;
          if dst = t.checker then
            deliver_push t ~time:r.time ~send_time ~src ~flow
      | None -> ())
  | Trace.Net_drop { src; dst; kind; flow } ->
      let k = kind_id t kind in
      t.drops <- t.drops + 1;
      t.k_dropped.(k) <- t.k_dropped.(k) + 1;
      t.k_inflight.(k) <- t.k_inflight.(k) - 1;
      (link t ~src ~dst ~kind:k).l_drops <-
        (link t ~src ~dst ~kind:k).l_drops + 1;
      ignore (edge_close t ~flow ~st:st_dropped)
  | Trace.Span_begin { name; lane } ->
      let id = span_id t name in
      let key = span_key r.pid lane in
      let stack =
        match Hashtbl.find_opt t.open_spans key with Some s -> s | None -> []
      in
      Hashtbl.replace t.open_spans key ((id, r.time) :: stack)
  | Trace.Span_end { name; lane } -> (
      let id = span_id t name in
      let key = span_key r.pid lane in
      match Hashtbl.find_opt t.open_spans key with
      | Some ((top, tb) :: rest) when top = id ->
          Hashtbl.replace t.open_spans key rest;
          let skey = (id * 4) + (lane land 3) in
          let h =
            match Hashtbl.find_opt t.span_stats skey with
            | Some h -> h
            | None ->
                let h = hist_create () in
                Hashtbl.add t.span_stats skey h;
                h
          in
          observe h (r.time - tb)
      | _ -> t.late <- t.late + 1 (* end without a matching begin *))
  | Trace.Detector_occurrence { verdict; window_ns } ->
      occurrence t r verdict window_ns
  | Trace.Lattice_commit { level; live; committed } ->
      t.lat_commits <- t.lat_commits + 1;
      t.lat_level <- level;
      t.lat_committed <- committed;
      t.lat_live_last <- live;
      if live > t.lat_live_peak then t.lat_live_peak <- live
  | Trace.Engine_schedule _ | Trace.Engine_fire | Trace.Engine_cancel
  | Trace.Clock_tick _ | Trace.Clock_receive _ | Trace.Clock_strobe _
  | Trace.Detector_update _ | Trace.Mark _ ->
      ()

let feed_sink t sink = Trace.iter (feed t) sink

(* --- accessors ----------------------------------------------------------- *)

let delivery_quantiles t =
  if t.delivery.h_n = 0 then None
  else
    Some
      {
        q50 = hist_quantile t.delivery 50;
        q90 = hist_quantile t.delivery 90;
        q99 = hist_quantile t.delivery 99;
        q_max = t.delivery.h_max;
      }

let paths t =
  let n = min t.path_n t.keep_paths in
  List.init n (fun i ->
      t.path_ring.((t.path_n - n + i) mod t.keep_paths))

let occurrences t = t.occ
let resolved t = t.occ_resolved

let mean_critical_ns t =
  if t.occ = 0 then 0.0 else float_of_int t.sum_path /. float_of_int t.occ

let open_edges t = t.open_count
let peak_open_edges t = t.peak_open
let expired_edges t = t.expired
let retired_edges t = t.matched
let lattice_commits t = t.lat_commits
let lattice_level t = t.lat_level
let lattice_committed t = t.lat_committed
let peak_live_cuts t = t.lat_live_peak

(* --- reports ------------------------------------------------------------- *)

let ms ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e6)

(* Links sorted largest-first with a deterministic tie-break, truncated
   to [top]. *)
let sorted_links t ~top =
  let all = Hashtbl.fold (fun _ l acc -> l :: acc) t.links [] in
  let key l = (t.kind_names.(l.l_kind), l.l_src, l.l_dst) in
  let all =
    List.sort
      (fun a b ->
        let c = compare (b.l_hist.h_n + b.l_drops) (a.l_hist.h_n + a.l_drops) in
        if c <> 0 then c else compare (key a) (key b))
      all
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  (take top all, max 0 (List.length all - top))

let sorted_spans t =
  let all =
    Hashtbl.fold
      (fun key h acc -> (t.span_names.(key / 4), key land 3, h) :: acc)
      t.span_stats []
  in
  List.sort compare all

let sorted_kinds t =
  List.sort compare (List.init t.kinds (fun k -> (t.kind_names.(k), k)))

let pct_of ~total part =
  if total = 0 then "0.0%"
  else Printf.sprintf "%.1f%%" (100.0 *. float_of_int part /. float_of_int total)

let horizon_text t =
  if t.horizon = max_int then "none"
  else Printf.sprintf "%s ms" (ms t.horizon)

let render ?(top = 16) t =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "== trace analytics ==\n";
  pf "records %d | sends %d | delivers %d | drops %d | occurrences %d (%d resolved)\n"
    t.records t.sends t.delivers t.drops t.occ t.occ_resolved;
  pf "retirement horizon: %s\n\n" (horizon_text t);
  (match delivery_quantiles t with
  | None -> pf "delivery latency: no deliveries\n"
  | Some q ->
      pf "delivery latency ms: p50 %s | p90 %s | p99 %s | max %s (n=%d)\n"
        (ms q.q50) (ms q.q90) (ms q.q99) (ms q.q_max) t.delivery.h_n);
  let links, more = sorted_links t ~top in
  if links <> [] then begin
    pf "\n-- delivery latency by link --\n";
    let rows =
      List.map
        (fun l ->
          [
            Printf.sprintf "%d->%d" l.l_src l.l_dst;
            t.kind_names.(l.l_kind);
            string_of_int l.l_hist.h_n;
            ms (hist_quantile l.l_hist 50);
            ms (hist_quantile l.l_hist 99);
            ms l.l_hist.h_max;
            string_of_int l.l_drops;
          ])
        links
    in
    Buffer.add_string buf
      (Table.render
         ~headers:[ "link"; "kind"; "n"; "p50 ms"; "p99 ms"; "max ms"; "drops" ]
         ~rows ());
    if more > 0 then pf "(%d more links)\n" more
  end;
  let spans = sorted_spans t in
  if spans <> [] then begin
    pf "\n-- span durations --\n";
    let rows =
      List.map
        (fun (name, lane, h) ->
          [
            name;
            string_of_int lane;
            string_of_int h.h_n;
            ms (hist_quantile h 50);
            ms (hist_quantile h 99);
            ms h.h_max;
          ])
        spans
    in
    Buffer.add_string buf
      (Table.render
         ~headers:[ "span"; "lane"; "n"; "p50 ms"; "p99 ms"; "max ms" ]
         ~rows ())
  end;
  if t.kinds > 0 then begin
    pf "\n-- traffic by kind --\n";
    let rows =
      List.map
        (fun (name, k) ->
          [
            name;
            string_of_int t.k_sent.(k);
            string_of_int t.k_delivered.(k);
            string_of_int t.k_dropped.(k);
            string_of_int t.k_words.(k);
            string_of_int t.k_peak.(k);
          ])
        (sorted_kinds t)
    in
    Buffer.add_string buf
      (Table.render
         ~headers:[ "kind"; "sent"; "delivered"; "dropped"; "words"; "peak in-flight" ]
         ~rows ())
  end;
  if t.path_n > 0 then begin
    let ps = paths t in
    pf "\n-- critical paths (last %d of %d) --\n" (List.length ps) t.path_n;
    let rows =
      List.mapi
        (fun i p ->
          let hop label =
            match List.find_opt (fun h -> h.h_label = label) p.p_hops with
            | Some h -> ms h.h_ns
            | None -> "-"
          in
          [
            string_of_int (t.path_n - List.length ps + i);
            ms p.p_detect_ns;
            p.p_verdict;
            ms p.p_window_ns;
            (if p.p_src < 0 then "local" else string_of_int p.p_src);
            (if p.p_flow < 0 then "-" else string_of_int p.p_flow);
            hop "emit";
            hop "transmit";
            hop "queue";
            hop "handler";
          ])
        ps
    in
    Buffer.add_string buf
      (Table.render
         ~headers:
           [ "#"; "t ms"; "verdict"; "window ms"; "src"; "flow"; "emit";
             "transmit"; "queue"; "handler" ]
         ~rows ());
    pf "attribution: emit %s | transmit %s | queue %s | handler %s (mean path %s ms, max %s ms)\n"
      (pct_of ~total:t.sum_path t.sum_emit)
      (pct_of ~total:t.sum_path t.sum_transmit)
      (pct_of ~total:t.sum_path t.sum_queue)
      (pct_of ~total:t.sum_path t.sum_handler)
      (Printf.sprintf "%.3f" (mean_critical_ns t /. 1e6))
      (ms t.max_path)
  end;
  if t.lat_commits > 0 then begin
    pf "\n-- streaming lattice --\n";
    pf
      "commits %d | committed level %d | committed cuts %d | live cuts %d \
       (peak %d)\n"
      t.lat_commits t.lat_level t.lat_committed t.lat_live_last
      t.lat_live_peak
  end;
  pf "\n-- analyzer --\n";
  pf "flow edges: %d retired by match, %d expired by horizon, %d open, %d late\n"
    t.matched t.expired t.open_count t.late;
  pf "peak open edges %d | peak edge-ring span %d | peak delivery window %d\n"
    t.peak_open t.peak_ring t.d_peak;
  Buffer.contents buf

let to_json ?(top = 16) t =
  let open Json in
  let q_fields h =
    [
      ("n", Int h.h_n);
      ("p50_ns", Int (hist_quantile h 50));
      ("p90_ns", Int (hist_quantile h 90));
      ("p99_ns", Int (hist_quantile h 99));
      ("max_ns", Int h.h_max);
      ("sum_ns", Int h.h_sum);
    ]
  in
  let links, _ = sorted_links t ~top in
  let doc =
      [
        ("schema", Str "psn-analyze/1");
        ( "horizon_ns",
          if t.horizon = max_int then Null else Int t.horizon );
        ( "totals",
          Obj
            [
              ("records", Int t.records);
              ("sends", Int t.sends);
              ("delivers", Int t.delivers);
              ("drops", Int t.drops);
              ("occurrences", Int t.occ);
              ("resolved", Int t.occ_resolved);
            ] );
        ( "delivery",
          if t.delivery.h_n = 0 then Null else Obj (q_fields t.delivery) );
        ( "links",
          List
            (List.map
               (fun l ->
                 Obj
                   ([
                      ("src", Int l.l_src);
                      ("dst", Int l.l_dst);
                      ("kind", Str t.kind_names.(l.l_kind));
                      ("drops", Int l.l_drops);
                    ]
                   @ q_fields l.l_hist))
               links) );
        ( "spans",
          List
            (List.map
               (fun (name, lane, h) ->
                 Obj ([ ("name", Str name); ("lane", Int lane) ] @ q_fields h))
               (sorted_spans t)) );
        ( "kinds",
          List
            (List.map
               (fun (name, k) ->
                 Obj
                   [
                     ("kind", Str name);
                     ("sent", Int t.k_sent.(k));
                     ("delivered", Int t.k_delivered.(k));
                     ("dropped", Int t.k_dropped.(k));
                     ("words", Int t.k_words.(k));
                     ("peak_in_flight", Int t.k_peak.(k));
                   ])
               (sorted_kinds t)) );
        ( "paths",
          List
            (List.map
               (fun p ->
                 Obj
                   [
                     ("seq", Int p.p_seq);
                     ("t_ns", Int p.p_detect_ns);
                     ("verdict", Str p.p_verdict);
                     ("window_ns", Int p.p_window_ns);
                     ("src", Int p.p_src);
                     ("flow", Int p.p_flow);
                     ( "hops",
                       Obj
                         (List.map
                            (fun h -> (h.h_label ^ "_ns", Int h.h_ns))
                            p.p_hops) );
                   ])
               (paths t)) );
        ( "attribution",
          Obj
            [
              ("emit_ns", Int t.sum_emit);
              ("transmit_ns", Int t.sum_transmit);
              ("queue_ns", Int t.sum_queue);
              ("handler_ns", Int t.sum_handler);
              ("total_ns", Int t.sum_path);
              ("max_path_ns", Int t.max_path);
            ] );
        ( "analyzer",
          Obj
            [
              ("matched_edges", Int t.matched);
              ("expired_edges", Int t.expired);
              ("open_edges", Int t.open_count);
              ("late_events", Int t.late);
              ("peak_open_edges", Int t.peak_open);
              ("peak_ring_span", Int t.peak_ring);
              ("peak_delivery_window", Int t.d_peak);
            ] );
      ]
      (* The lattice section appears only when the run carried
         [Lattice_commit] records, so analyses of pre-streaming traces
         keep their historical bytes. *)
      @ (if t.lat_commits = 0 then []
         else
           [
             ( "lattice",
               Obj
                 [
                   ("commits", Int t.lat_commits);
                   ("committed_level", Int t.lat_level);
                   ("committed_cuts", Int t.lat_committed);
                   ("live_cuts", Int t.lat_live_last);
                   ("peak_live_cuts", Int t.lat_live_peak);
                 ] );
           ])
  in
  to_string (Obj doc)

(* --- sharded-run analysis ---------------------------------------------- *)

(* Everything below reads a [Shard_stats.t] — host-time counters the
   sharded engine recorded at its barriers — and derives the three
   answers ROADMAP item 1 left open: where wall time goes
   (parallel / drain / fold / other), how unevenly the shards are
   loaded, and what speedup C cores would buy (an Amdahl projection
   from the measured per-window busy profile, not a hand-wave).

   The projection model: serial work (coordinator drain + fold +
   unattributed time + dispatch overhead) does not scale; each
   window's parallel region takes at least its critical path
   [max_s busy] and at least its total busy time divided over C
   cores.  T(1) under this model is exactly serial + total busy, so
   the curve starts at 1.0 by construction. *)

type shard_row = {
  sh_events : int;
  sh_busy_ns : int;
  sh_wait_ns : int;  (* Σ over windows of (par_ns - busy), clamped *)
  sh_sent : int;
  sh_recv : int;
}

type sharded_report = {
  sr_shards : int;
  sr_lookahead_ns : int;
  sr_windows : int;
  sr_events : int;
  sr_limit_lookahead : int;
  sr_limit_queue : int;
  sr_limit_horizon : int;
  sr_wall_ns : int;  (* measured run wall; T(1) when unmeasured *)
  sr_par_ns : int;  (* Σ parallel regions *)
  sr_drain_ns : int;  (* coordinator drains, epilogue included *)
  sr_fold_ns : int;  (* next-window folds, epilogue included *)
  sr_other_ns : int;  (* wall - parallel - drain - fold, clamped *)
  sr_busy_ns : int;  (* Σ over shards and windows *)
  sr_critical_ns : int;  (* Σ over windows of max_s busy *)
  sr_dispatch_ns : int;  (* Σ over windows of (par - Σ busy), clamped *)
  sr_parallel_frac : float;
  sr_serial_frac : float;
  sr_imbalance_events : float;
  sr_imbalance_busy : float;
  sr_cross_msgs : int;
  sr_pending : int;
  sr_peak_mail_ints : int;
  sr_per_shard : shard_row array;
  sr_amdahl : (int * float) array;  (* cores, projected speedup *)
  sr_amdahl_limit : float;  (* C -> infinity asymptote *)
}

let sharded st =
  let k = Shard_stats.shards st in
  let n = Shard_stats.windows st in
  let limits = [| 0; 0; 0 |] in
  let drain = ref (Shard_stats.epilogue_drain_ns st) in
  let fold = ref (Shard_stats.epilogue_fold_ns st) in
  let par = ref 0 in
  let busy_tot = ref 0 in
  let crit = ref 0 in
  let dispatch = ref 0 in
  let sum_max_e = ref 0 in
  let sum_e = ref 0 in
  let sum_max_b = ref 0 in
  let events = Array.make k 0 in
  let busy = Array.make k 0 in
  let wait = Array.make k 0 in
  let sent = Array.make k 0 in
  let recv = Array.make k 0 in
  for w = 0 to n - 1 do
    let li =
      match Shard_stats.limit st w with
      | Shard_stats.Lookahead -> 0
      | Shard_stats.Queue -> 1
      | Shard_stats.Horizon -> 2
    in
    limits.(li) <- limits.(li) + 1;
    drain := !drain + Shard_stats.drain_ns st w;
    fold := !fold + Shard_stats.fold_ns st w;
    let p = Shard_stats.par_ns st w in
    par := !par + p;
    let bw = ref 0 and max_b = ref 0 and max_e = ref 0 in
    for s = 0 to k - 1 do
      let e = Shard_stats.events st w ~shard:s in
      let b = Shard_stats.busy_ns st w ~shard:s in
      events.(s) <- events.(s) + e;
      busy.(s) <- busy.(s) + b;
      wait.(s) <- wait.(s) + max 0 (p - b);
      bw := !bw + b;
      if b > !max_b then max_b := b;
      if e > !max_e then max_e := e;
      sum_e := !sum_e + e
    done;
    busy_tot := !busy_tot + !bw;
    crit := !crit + !max_b;
    dispatch := !dispatch + max 0 (p - !bw);
    sum_max_e := !sum_max_e + !max_e;
    sum_max_b := !sum_max_b + !max_b;
    if k > 1 then
      for src = 0 to k - 1 do
        for dst = 0 to k - 1 do
          let m = Shard_stats.traffic st w ~src ~dst in
          sent.(src) <- sent.(src) + m;
          recv.(dst) <- recv.(dst) + m
        done
      done
  done;
  let serial = !drain + !fold in
  let t1 = serial + !dispatch + !busy_tot in
  let wall =
    let m = Shard_stats.run_wall_ns st in
    if m > 0 then m else t1
  in
  let other = max 0 (wall - !par - serial) in
  let t_of cores =
    let acc = ref (serial + other + !dispatch) in
    for w = 0 to n - 1 do
      let bw = ref 0 and max_b = ref 0 in
      for s = 0 to k - 1 do
        let b = Shard_stats.busy_ns st w ~shard:s in
        bw := !bw + b;
        if b > !max_b then max_b := b
      done;
      acc := !acc + max !max_b ((!bw + cores - 1) / cores)
    done;
    !acc
  in
  let t1' = serial + other + !dispatch + !busy_tot in
  let speedup tc = if tc <= 0 then 1.0 else float_of_int t1' /. float_of_int tc in
  let cores =
    let base = [ 1; 2; 4; 8; 16; 32 ] in
    if List.mem k base then base
    else List.sort_uniq compare (k :: base)
  in
  let frac num = if wall <= 0 then 0.0 else float_of_int num /. float_of_int wall in
  let imb sum_max sum =
    if sum <= 0 then 1.0
    else float_of_int (k * sum_max) /. float_of_int sum
  in
  {
    sr_shards = k;
    sr_lookahead_ns = Shard_stats.lookahead_ns st;
    sr_windows = n;
    sr_events = !sum_e;
    sr_limit_lookahead = limits.(0);
    sr_limit_queue = limits.(1);
    sr_limit_horizon = limits.(2);
    sr_wall_ns = wall;
    sr_par_ns = !par;
    sr_drain_ns = !drain;
    sr_fold_ns = !fold;
    sr_other_ns = other;
    sr_busy_ns = !busy_tot;
    sr_critical_ns = !crit;
    sr_dispatch_ns = !dispatch;
    sr_parallel_frac = frac !par;
    sr_serial_frac = (if wall <= 0 then 0.0 else frac (max 0 (wall - !par)));
    sr_imbalance_events = imb !sum_max_e !sum_e;
    sr_imbalance_busy = imb !sum_max_b !busy_tot;
    sr_cross_msgs = Shard_stats.drained_total st;
    sr_pending = Shard_stats.pending st;
    sr_peak_mail_ints = Shard_stats.peak_mail_ints st;
    sr_per_shard =
      Array.init k (fun s ->
          {
            sh_events = events.(s);
            sh_busy_ns = busy.(s);
            sh_wait_ns = wait.(s);
            sh_sent = sent.(s);
            sh_recv = recv.(s);
          });
    sr_amdahl =
      Array.of_list (List.map (fun c -> (c, speedup (t_of c))) cores);
    sr_amdahl_limit =
      (let t_inf = serial + other + !dispatch + !crit in
       speedup t_inf);
  }

let render_sharded st =
  let r = sharded st in
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ms ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e6) in
  let pct f = Printf.sprintf "%.1f%%" (100.0 *. f) in
  pf "== sharded run: %d shards, %d windows, lookahead %s ms ==\n" r.sr_shards
    r.sr_windows (ms r.sr_lookahead_ns);
  pf "events %d | cross-shard msgs %d (pending %d, peak ring %d ints)\n"
    r.sr_events r.sr_cross_msgs r.sr_pending r.sr_peak_mail_ints;
  pf "windows: %d lookahead-limited, %d queue-limited, %d horizon-limited\n"
    r.sr_limit_lookahead r.sr_limit_queue r.sr_limit_horizon;
  pf "wall %s ms = parallel %s + drain %s + fold %s + other %s\n"
    (ms r.sr_wall_ns) (pct r.sr_parallel_frac)
    (pct (if r.sr_wall_ns <= 0 then 0.0
          else float_of_int r.sr_drain_ns /. float_of_int r.sr_wall_ns))
    (pct (if r.sr_wall_ns <= 0 then 0.0
          else float_of_int r.sr_fold_ns /. float_of_int r.sr_wall_ns))
    (pct (if r.sr_wall_ns <= 0 then 0.0
          else float_of_int r.sr_other_ns /. float_of_int r.sr_wall_ns));
  pf "busy %s ms over %d shards; critical path %s ms; dispatch %s ms\n"
    (ms r.sr_busy_ns) r.sr_shards (ms r.sr_critical_ns) (ms r.sr_dispatch_ns);
  pf "load imbalance: %.3f (events), %.3f (busy)\n" r.sr_imbalance_events
    r.sr_imbalance_busy;
  pf "%6s %10s %10s %10s %8s %8s\n" "shard" "events" "busy ms" "wait ms"
    "sent" "recv";
  Array.iteri
    (fun s row ->
      pf "%6d %10d %10s %10s %8d %8d\n" s row.sh_events (ms row.sh_busy_ns)
        (ms row.sh_wait_ns) row.sh_sent row.sh_recv)
    r.sr_per_shard;
  pf "Amdahl projection:";
  Array.iter
    (fun (c, s) -> pf " x%.2f @%d" s c)
    r.sr_amdahl;
  pf " | limit x%.2f\n" r.sr_amdahl_limit;
  Buffer.contents buf

let sharded_to_json st =
  let r = sharded st in
  let open Json in
  let analysis =
    Obj
      [
        ("wall_ns", Int r.sr_wall_ns);
        ( "attribution",
          Obj
            [
              ("parallel_ns", Int r.sr_par_ns);
              ("drain_ns", Int r.sr_drain_ns);
              ("fold_ns", Int r.sr_fold_ns);
              ("other_ns", Int r.sr_other_ns);
              ("busy_ns", Int r.sr_busy_ns);
              ("critical_ns", Int r.sr_critical_ns);
              ("dispatch_ns", Int r.sr_dispatch_ns);
              ("parallel_frac", Float r.sr_parallel_frac);
              ("serial_frac", Float r.sr_serial_frac);
            ] );
        ( "limits",
          Obj
            [
              ("lookahead", Int r.sr_limit_lookahead);
              ("queue", Int r.sr_limit_queue);
              ("horizon", Int r.sr_limit_horizon);
            ] );
        ( "imbalance",
          Obj
            [
              ("events", Float r.sr_imbalance_events);
              ("busy", Float r.sr_imbalance_busy);
            ] );
        ( "per_shard",
          List
            (Array.to_list
               (Array.mapi
                  (fun s row ->
                    Obj
                      [
                        ("shard", Int s);
                        ("events", Int row.sh_events);
                        ("busy_ns", Int row.sh_busy_ns);
                        ("wait_ns", Int row.sh_wait_ns);
                        ("sent", Int row.sh_sent);
                        ("recv", Int row.sh_recv);
                      ])
                  r.sr_per_shard)) );
        ( "amdahl",
          Obj
            [
              ( "cores",
                List
                  (Array.to_list
                     (Array.map (fun (c, _) -> Int c) r.sr_amdahl)) );
              ( "speedup",
                List
                  (Array.to_list
                     (Array.map (fun (_, s) -> Float s) r.sr_amdahl)) );
              ("limit", Float r.sr_amdahl_limit);
            ] );
      ]
  in
  to_string
    (Obj
       ((("schema", Str "psn-shardstats/1") :: Shard_stats.raw_members st)
       @ [ ("analysis", analysis) ]))
