(** Per-window counters of a sharded run: the flat-int observability
    arena behind [psn-sim shardstats].

    One row per barrier window, recorded by the sharded engine's
    coordinator into a grow-by-doubling [int array] (the
    [pending_arena] idiom), so steady-state recording allocates
    nothing.  A row holds the window's sim-time bounds, its limiting
    factor, the coordinator's drain/fold host time, the parallel
    region's host time, mailbox traffic (per-(src, dst) message matrix
    plus ring occupancy), and per-shard events executed and busy host
    nanoseconds.

    {b Host/sim quarantine.}  Like {!Profile}, this is an observer of
    the {e host} clock: readings are taken by the engine with
    {!now_ns} and passed in explicitly, and they never enter a trace
    sink or metrics registry — same-seed sim artifacts stay
    byte-identical whether or not stats are read.  Because every
    recording entry point takes explicit values, tests can hand-build
    a stats object with fixed numbers and golden its renderings.

    {b Domain discipline.}  All entry points run on the coordinator
    domain between windows, except {!shard_report} and {!note_posted},
    which run on shard domains but write only the calling shard's own
    slot of a scratch array; the coordinator reads those slots only
    after the pool joins the window, which gives the happens-before
    edge. *)

type t

(** Why a window ended where it did. *)
type limit =
  | Lookahead  (** more work existed just past [window_end] — the
                   conservative bound, not the queue, cut the window *)
  | Queue  (** the queues went empty (or jumped far ahead): the next
               global event lies at least a full lookahead past the
               window *)
  | Horizon  (** the window was clipped by the run's [until] bound *)

val limit_to_string : limit -> string
(** ["lookahead"], ["queue"], ["horizon"]. *)

val create : shards:int -> lookahead_ns:int -> t
(** Raises [Invalid_argument] when [shards < 1]. *)

val now_ns : unit -> int
(** Monotonic host clock, nanoseconds.  The one clock source; callers
    read it and pass differences to the recording entry points. *)

(** {1 Recording} *)

val round_begin : t -> unit
(** Open (and zero) the next row.  Every barrier round begins here; the
    row is committed by {!window_close} or discarded into the epilogue
    totals by {!round_abort}. *)

val note_traffic : t -> src:int -> dst:int -> msgs:int -> unit
(** [msgs] messages drained from the [(src, dst)] mailbox this round. *)

val note_occupancy : t -> ints:int -> unit
(** Total ints occupied across mailbox rings at this round's barrier
    (before draining); also tracks the all-run peak. *)

val drain_done : t -> host_ns:int -> unit
(** Host time the coordinator spent draining mailboxes this round. *)

val fold_done : t -> host_ns:int -> unit
(** Host time computing the global minimum / next window this round. *)

val window_open : t -> start_ns:int -> end_ns:int -> unit
(** Sim-time bounds of the window about to execute ([end_ns]
    exclusive). *)

val shard_report : t -> shard:int -> events_total:int -> busy_ns:int -> unit
(** Called by shard [shard] as its window job finishes:
    [events_total] is the engine's cumulative event count (the row
    stores the per-window delta), [busy_ns] the job's host time.
    Writes only slot [shard]; safe from the shard's domain. *)

val window_close : t -> clipped:bool -> par_ns:int -> unit
(** Commit the row: [par_ns] is the host time of the whole parallel
    region (so [par_ns - busy] is a shard's barrier wait).  [clipped]
    marks a {!Horizon}-limited window; otherwise the row is
    provisionally {!Queue} until the next round's {!classify_prev}
    sees the post-drain global minimum — only then is it known
    whether more work lay just past the window end (mailbox rings can
    hold the true next event, so classifying at close would lie). *)

val classify_prev : t -> next_ns:int -> unit
(** Settle the last committed row's {!limit} from the next round's
    post-drain global minimum [next_ns]: {!Lookahead} when
    [next_ns - end_ns < lookahead_ns] (the conservative bound, not
    the queue, cut the window), {!Queue} otherwise.  No-op when the
    last row is already classified. *)

val round_abort : t -> unit
(** The round opened no window (the run is past [until]): fold the
    row's drain/fold/traffic into the epilogue totals and discard it. *)

val note_posted : t -> src:int -> unit
(** One cross-shard message appended to a mailbox ring by shard [src].
    Writes only slot [src]; safe from the shard's domain. *)

val run_done : t -> wall_ns:int -> unit
(** Host wall time of one [run] call; accumulates across calls. *)

(** {1 Reading} *)

val shards : t -> int
val lookahead_ns : t -> int

val windows : t -> int
(** Committed rows. *)

val start_ns : t -> int -> int
val end_ns : t -> int -> int
val limit : t -> int -> limit
val drain_ns : t -> int -> int
val fold_ns : t -> int -> int
val par_ns : t -> int -> int
val mail_msgs : t -> int -> int
val mail_ints : t -> int -> int
val events : t -> int -> shard:int -> int
val busy_ns : t -> int -> shard:int -> int
val traffic : t -> int -> src:int -> dst:int -> int

val total_events : t -> int
(** Σ over committed rows and shards — equals the engine's
    [events_processed] when every event ran inside a window (the
    conservation invariant the qcheck suite checks). *)

val posted_total : t -> int
(** Cross-shard messages appended to mailbox rings, all run. *)

val drained_total : t -> int
(** Cross-shard messages drained at barriers, all run.  Conservation:
    [posted_total = drained_total + pending] where [pending] is what
    still sits in the rings (zero after a completed run). *)

val pending : t -> int
(** [posted_total - drained_total]. *)

val peak_mail_ints : t -> int
val run_wall_ns : t -> int

val epilogue_drain_ns : t -> int
val epilogue_fold_ns : t -> int
val epilogue_mail_msgs : t -> int
(** Barrier work from rounds that opened no window (the final drain
    that discovers the horizon has passed).
    [Σ mail_msgs + epilogue_mail_msgs = drained_total]. *)

(** {1 Serialization}

    The JSON document (schema ["psn-shardstats/1"]) is emitted by
    {!Analyze.sharded_to_json}, which wraps {!raw_members} with the
    derived analysis; {!of_json} reads the raw members back and
    ignores the analysis, so a dumped file can be re-analyzed. *)

val raw_members : t -> (string * Json.t) list
(** [shards], [lookahead_ns], [totals], and the per-window [windows]
    array.  All-zero traffic matrices are omitted from rows. *)

val of_json : Json.t -> (t, string) result
