(* Minimal JSON: a tree, a deterministic printer, a recursive-descent
   parser. No external dependency, no streaming — snapshots and traces
   are built in memory anyway. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every finite double; infinities/NaN are not valid
   JSON, so clamp them to null like most encoders do.  Integral doubles
   render without a point ("2"), which our own parser — and any JSON
   reader distinguishing ints from floats — would read back as an
   integer; appending ".0" keeps [Float f] a [Float] across a
   print/parse round trip. *)
let float_to_buffer buf f =
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    if not (String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s)
    then Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to_buffer buf f
  | Str s -> escape_to_buffer buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to_buffer buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* Parser: plain recursive descent over a cursor. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %c at %d, got %c" ch c.pos x
  | None -> parse_error "expected %c at %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.equal (String.sub c.src c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string at %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then
              parse_error "bad \\u escape at %d" c.pos;
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> parse_error "bad \\u escape at %d" c.pos
            in
            c.pos <- c.pos + 4;
            (* Encode the code point as UTF-8 (no surrogate pairing; the
               printer only emits \u for control characters). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> parse_error "bad escape at %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "bad number %S at %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> parse_error "bad number %S at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields ((k, v) :: acc)
          | Some '}' -> advance c; List.rev ((k, v) :: acc)
          | _ -> parse_error "expected , or } at %d" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elems (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> parse_error "expected , or ] at %d" c.pos
        in
        List (elems [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg
