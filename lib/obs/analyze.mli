(** Streaming causal trace analytics.

    A consumer of the typed {!Trace} record stream that reconstructs the
    causal DAG of a run — flow edges ([Net_send] → [Net_deliver] /
    [Net_drop]) between process tracks, span intervals per (pid, lane),
    and detector occurrences with their sense-to-detect windows — and
    answers the questions the raw trace only stores evidence for:

    - {b Critical paths}: per detector occurrence, the longest-latency
      causal chain of sends/delivers/spans that terminated in the
      occurrence, with per-hop attribution split into emit (sense to
      send), transmission (send to deliver), queueing (deliver to
      handler start) and handler time.  Hop latencies are non-negative
      and sum to at most the occurrence window.
    - {b Latency histograms}: log-bucketed (power-of-two octaves with
      four linear sub-buckets, so quantiles resolve within 12.5%)
      per-link delivery latency and per-(span, lane) durations, each a
      fixed int-array histogram in the style of the stamp plane —
      observation is allocation-free after the first sight of a key.
    - {b Queue pressure and loss}: per-kind in-flight high-watermarks
      and drop counts attributed to the (src, dst, kind) link.

    The analyzer is streaming and single-pass: [feed] it records in
    trace order, either post-hoc (a retained sink or a JSONL file via
    {!Import}) or online as a sink tap ([Trace.set_tap]) during a live
    run.  With a [horizon_ns], memory is bounded: a flow edge is retired
    once both endpoints are seen or once the sim-time horizon passes its
    send, so the open-edge window — and the recent-delivery window used
    for critical paths — cannot grow with run length.  Feeding the same
    record stream at the same horizon produces byte-identical [render]
    and [to_json] output whichever mode delivered the records. *)

type t

val create : ?horizon_ns:int -> ?checker_pid:int -> ?keep_paths:int -> unit -> t
(** [horizon_ns]: sim-time retirement horizon for unmatched flow edges
    and the recent-delivery window (omitted = unbounded, the post-hoc
    default).  Raises [Invalid_argument] when non-positive.
    [checker_pid] (default 0): the process whose occurrences get
    critical paths — the linearizing detectors all check at process 0.
    [keep_paths] (default 32): how many of the most recent critical
    paths are kept verbatim for the report; aggregates cover all. *)

val feed : t -> Trace.record -> unit
(** Consume one record.  Records must arrive in emission order (the
    order [Trace.iter] and the JSONL export preserve). *)

val feed_sink : t -> Trace.sink -> unit
(** [Trace.iter (feed t) sink]. *)

(** {2 Programmatic results} *)

type quantiles = { q50 : int; q90 : int; q99 : int; q_max : int }
(** Latency quantiles in ns.  Quantiles answer the lower bound of the
    log bucket holding the requested rank, so they are deterministic
    and never overstate. *)

val delivery_quantiles : t -> quantiles option
(** Across every link; [None] before the first delivery. *)

type hop = { h_label : string; h_ns : int }

type path = {
  p_seq : int;  (** trace seq of the occurrence record *)
  p_detect_ns : int;
  p_verdict : string;
  p_window_ns : int;
  p_src : int;  (** sender of the trigger chain; -1 when unresolved *)
  p_flow : int;  (** flow id of the trigger message; -1 without a network hop *)
  p_hops : hop list;  (** emit, transmit, queue, handler — in causal order *)
}

val paths : t -> path list
(** The [keep_paths] most recent critical paths, oldest first. *)

val occurrences : t -> int
val resolved : t -> int
(** How many occurrences were tied to a concrete trigger message chain. *)

val mean_critical_ns : t -> float
(** Mean critical-path latency (sum of hop latencies) over all
    occurrences; 0 before the first. *)

val open_edges : t -> int
val peak_open_edges : t -> int
val expired_edges : t -> int
(** Unmatched flow edges retired by the horizon. *)

val retired_edges : t -> int
(** Flow edges retired by seeing both endpoints (deliver or drop). *)

(** {2 Streaming-lattice occupancy}

    Aggregated from the [Lattice_commit] records an online detector
    emits at each flush.  All zero when the run carried none. *)

val lattice_commits : t -> int
(** [Lattice_commit] records seen. *)

val lattice_level : t -> int
(** Highest finalized cut level reported. *)

val lattice_committed : t -> int
(** Committed consistent-cut count at the last commit record. *)

val peak_live_cuts : t -> int
(** Widest live slab any commit record reported — the bounded-memory
    evidence, the streaming twin of {!peak_open_edges}. *)

(** {2 Reports} *)

val render : ?top:int -> t -> string
(** Text report: totals, per-link latency table (largest [top] links,
    default 16), span table, per-kind traffic and in-flight watermarks,
    recent critical paths with per-hop attribution, aggregate
    attribution shares, and the analyzer's own memory evidence. *)

val to_json : ?top:int -> t -> string
(** Same content as [render] under schema ["psn-analyze/1"]. *)

(** {2 Sharded-run analysis}

    Post-hoc analysis of the {!Shard_stats} counters a sharded run
    recorded: wall-time attribution (parallel region vs. coordinator
    drain/fold vs. unattributed), per-shard load and barrier wait,
    load-imbalance coefficients, and an Amdahl-style projected-speedup
    curve derived from the measured per-window busy profile — serial
    work does not scale, and each window takes at least its critical
    path [max over shards of busy] and at least its total busy time
    divided over the projected core count.  All inputs are host-time
    readings; nothing here touches sim artifacts. *)

type shard_row = {
  sh_events : int;
  sh_busy_ns : int;
  sh_wait_ns : int;
      (** Σ over windows of (parallel-region time − this shard's busy
          time): time the shard sat at the barrier. *)
  sh_sent : int;  (** cross-shard messages sent *)
  sh_recv : int;
}

type sharded_report = {
  sr_shards : int;
  sr_lookahead_ns : int;
  sr_windows : int;
  sr_events : int;
  sr_limit_lookahead : int;  (** windows cut by the conservative bound *)
  sr_limit_queue : int;  (** windows after which the queues went quiet *)
  sr_limit_horizon : int;  (** windows clipped by [until] *)
  sr_wall_ns : int;
      (** measured run wall time; the model's T(1) when no run was
          timed (hand-built stats). *)
  sr_par_ns : int;
  sr_drain_ns : int;
  sr_fold_ns : int;
  sr_other_ns : int;
  sr_busy_ns : int;
  sr_critical_ns : int;
  sr_dispatch_ns : int;
      (** parallel-region time not covered by any shard's busy time:
          pool hand-off overhead. *)
  sr_parallel_frac : float;
  sr_serial_frac : float;
  sr_imbalance_events : float;
      (** [K · Σ_w max_s events / Σ_w Σ_s events] — 1.0 is perfectly
          balanced, K is one shard doing everything.  Event-based, so
          deterministic for a given seed. *)
  sr_imbalance_busy : float;  (** same shape over busy host-ns *)
  sr_cross_msgs : int;
  sr_pending : int;
  sr_peak_mail_ints : int;
  sr_per_shard : shard_row array;
  sr_amdahl : (int * float) array;
      (** (cores, projected speedup); starts at (1, 1.0) by
          construction. *)
  sr_amdahl_limit : float;  (** the C → ∞ asymptote *)
}

val sharded : Shard_stats.t -> sharded_report

val render_sharded : Shard_stats.t -> string
(** Text report: totals, window-limit classification, wall-time
    attribution, per-shard table, imbalance, Amdahl curve. *)

val sharded_to_json : Shard_stats.t -> string
(** ["psn-shardstats/1"] document: the raw {!Shard_stats.raw_members}
    (so {!Shard_stats.of_json} can re-analyze it) plus the derived
    ["analysis"] object. *)
