(* Metrics registry: named counters, gauges, histograms.

   Handles are plain mutable cells resolved once at registration, so
   instrumented hot paths never touch the name table. Histograms reuse
   [Psn_util.Stats.histogram]; the wrapper remembers the bounds so [reset]
   can rebuild an empty one.

   The timeline is the registry's time axis: a fixed-capacity ring of
   (sim time, instrument values) samples, recorded every sampling period
   by whoever drives the clock (the engine, see [Psn_sim.Engine]).  A
   full ring overwrites the oldest sample — the tail of a run is the
   interesting part — and remembers how many it dropped so exports can
   say so. *)

module Stats = Psn_util.Stats

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  h_lo : float;
  h_hi : float;
  h_bins : int;
  mutable h : Stats.histogram;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name make want =
  match Hashtbl.find_opt t.table name with
  | Some i ->
      if kind_name i <> want then
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name i)
             want);
      i
  | None ->
      let i = make () in
      Hashtbl.replace t.table name i;
      i

let counter t name =
  match register t name (fun () -> C { c = 0 }) "counter" with
  | C c -> c
  | _ -> assert false

let incr ?(by = 1) c = c.c <- c.c + by
let tick c = c.c <- c.c + 1
let counter_value c = c.c

let gauge t name =
  match register t name (fun () -> G { g = 0.0 }) "gauge" with
  | G g -> g
  | _ -> assert false

let set g v = g.g <- v
let gauge_value g = g.g

let histogram t ?(lo = 0.0) ?(hi = 1000.0) ?(bins = 20) name =
  let make () =
    H { h_lo = lo; h_hi = hi; h_bins = bins;
        h = Stats.histogram_create ~lo ~hi ~bins }
  in
  match register t name make "histogram" with
  | H h ->
      (* Get-or-create must agree on the range: silently keeping the
         original bounds would misbin the second registrant's samples
         without any signal. *)
      if h.h_lo <> lo || h.h_hi <> hi || h.h_bins <> bins then
        invalid_arg
          (Printf.sprintf
             "Metrics.histogram: %S already registered with [%g,%g) x%d, \
              requested [%g,%g) x%d"
             name h.h_lo h.h_hi h.h_bins lo hi bins);
      h
  | _ -> assert false

let observe h v = Stats.histogram_add h.h v

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      lo : float;
      hi : float;
      counts : int array;
      underflow : int;
      overflow : int;
    }

type snapshot = (string * value) list

let empty_snapshot = []

let snapshot t =
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h ->
            Histogram
              {
                lo = h.h_lo;
                hi = h.h_hi;
                counts = Stats.histogram_bins h.h;
                underflow = Stats.histogram_underflow h.h;
                overflow = Stats.histogram_overflow h.h;
              }
      in
      (name, v) :: acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
          h.h <- Stats.histogram_create ~lo:h.h_lo ~hi:h.h_hi ~bins:h.h_bins)
    t.table

(* Deterministic union of per-shard snapshots: counters and histogram
   bins sum; gauges take the last writer in argument order (shard
   index), which is why sharded layers stick to counters and histograms
   for anything that must merge back to the single-run value.  The
   result is sorted by name like any [snapshot]. *)
let merge_snapshots snaps =
  let tbl : (string, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      List.iter
        (fun (name, v) ->
          match (Hashtbl.find_opt tbl name, v) with
          | None, _ -> Hashtbl.replace tbl name v
          | Some (Counter a), Counter b -> Hashtbl.replace tbl name (Counter (a + b))
          | Some (Gauge _), (Gauge _ as g) -> Hashtbl.replace tbl name g
          | Some (Histogram a), Histogram b ->
              if a.lo <> b.lo || a.hi <> b.hi
                 || Array.length a.counts <> Array.length b.counts
              then
                invalid_arg
                  (Printf.sprintf
                     "Metrics.merge_snapshots: histogram %S bounds mismatch" name)
              else
                Hashtbl.replace tbl name
                  (Histogram
                     {
                       a with
                       counts = Array.map2 ( + ) a.counts b.counts;
                       underflow = a.underflow + b.underflow;
                       overflow = a.overflow + b.overflow;
                     })
          | Some _, _ ->
              invalid_arg
                (Printf.sprintf
                   "Metrics.merge_snapshots: instrument %S kind mismatch" name))
        snap)
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let get_counter snap name =
  match find snap name with Some (Counter c) -> c | _ -> 0

let pp_snapshot ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Fmt.pf ppf "%-28s %d@." name c
      | Gauge g -> Fmt.pf ppf "%-28s %g@." name g
      | Histogram h ->
          let total =
            Array.fold_left ( + ) (h.underflow + h.overflow) h.counts
          in
          Fmt.pf ppf "%-28s histogram [%g,%g) n=%d under=%d over=%d@." name h.lo
            h.hi total h.underflow h.overflow)
    snap

let value_to_json = function
  | Counter c -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c) ]
  | Gauge g -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float g) ]
  | Histogram h ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ("lo", Json.Float h.lo);
          ("hi", Json.Float h.hi);
          ("underflow", Json.Int h.underflow);
          ("overflow", Json.Int h.overflow);
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
        ]

let snapshot_to_json snap =
  Json.to_string (Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) snap))

(* Accept Int where a float field is expected: "0" parses as Int. *)
let as_float = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let value_of_json name j =
  let fail what =
    Error (Printf.sprintf "snapshot field %S: bad or missing %s" name what)
  in
  match Json.member "type" j with
  | Some (Json.Str "counter") -> (
      match Json.member "value" j with
      | Some (Json.Int c) -> Ok (Counter c)
      | _ -> fail "counter value")
  | Some (Json.Str "gauge") -> (
      match Option.bind (Json.member "value" j) as_float with
      | Some g -> Ok (Gauge g)
      | None -> fail "gauge value")
  | Some (Json.Str "histogram") -> (
      let num k = Option.bind (Json.member k j) as_float in
      let int k =
        match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
      in
      let counts =
        match Json.member "counts" j with
        | Some (Json.List xs) ->
            let ints =
              List.filter_map
                (function Json.Int i -> Some i | _ -> None)
                xs
            in
            if List.length ints = List.length xs then Some (Array.of_list ints)
            else None
        | _ -> None
      in
      match (num "lo", num "hi", int "underflow", int "overflow", counts) with
      | Some lo, Some hi, Some underflow, Some overflow, Some counts ->
          Ok (Histogram { lo; hi; counts; underflow; overflow })
      | _ -> fail "histogram fields")
  | _ -> fail "type"

let snapshot_of_json s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, j) :: rest -> (
            match value_of_json name j with
            | Ok v -> go ((name, v) :: acc) rest
            | Error e -> Error e)
      in
      go [] fields
  | Ok _ -> Error "snapshot JSON must be an object"

(* --- timeline ---------------------------------------------------------- *)

type sample = { s_time_ns : int; s_values : (string * float) list }

type timeline = {
  tl_period_ns : int;
  tl_cap : int;
  tl_ring : sample array;
  mutable tl_recorded : int;  (* total ever recorded; ring head is mod cap *)
}

let dummy_sample = { s_time_ns = 0; s_values = [] }

let timeline_create ?(capacity = 4096) ~period_ns () =
  if period_ns <= 0 then
    invalid_arg "Metrics.timeline_create: period must be positive";
  if capacity <= 0 then
    invalid_arg "Metrics.timeline_create: capacity must be positive";
  { tl_period_ns = period_ns; tl_cap = capacity;
    tl_ring = Array.make capacity dummy_sample; tl_recorded = 0 }

let timeline_period_ns tl = tl.tl_period_ns

(* Counters and gauges become points of the series; histograms only
   contribute their total observation count (the shape lives in the end-of-run
   snapshot).  Sorted by name, so samples — and their exports — are
   deterministic. *)
let timeline_record tl ~time_ns t =
  let values =
    Hashtbl.fold
      (fun name i acc ->
        let v =
          match i with
          | C c -> float_of_int c.c
          | G g -> g.g
          | H h -> float_of_int (Stats.histogram_total h.h)
        in
        (name, v) :: acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  tl.tl_ring.(tl.tl_recorded mod tl.tl_cap) <-
    { s_time_ns = time_ns; s_values = values };
  tl.tl_recorded <- tl.tl_recorded + 1

let timeline_recorded tl = tl.tl_recorded
let timeline_dropped tl = max 0 (tl.tl_recorded - tl.tl_cap)

let timeline_samples tl =
  let kept = min tl.tl_recorded tl.tl_cap in
  let first = tl.tl_recorded - kept in
  List.init kept (fun i -> tl.tl_ring.((first + i) mod tl.tl_cap))

(* Process-wide default, picked up by [Psn_sim.Engine.create] exactly like
   the default trace sink: installing one makes every engine created under
   it sample its registry on the timeline's period. *)
let default_tl : timeline option ref = ref None
let set_default_timeline tl = default_tl := tl
let default_timeline () = !default_tl

let with_default_timeline tl f =
  let saved = !default_tl in
  default_tl := Some tl;
  Fun.protect ~finally:(fun () -> default_tl := saved) f
