(** Binary min-heap over an explicit comparison.

    Generic utility heap; the simulation engine's event queue is the
    monomorphic [Psn_sim.Event_queue].  As with [Vec], [dummy] fills
    unused slots of the backing array so popped elements are not
    retained. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  The vacated slot is cleared
    (overwritten with [dummy]), so the heap never retains a popped
    payload. *)

val clear : 'a t -> unit
val of_list : cmp:('a -> 'a -> int) -> dummy:'a -> 'a list -> 'a t

val drain : 'a t -> 'a list
(** Empty the heap, returning its elements in ascending order. *)
