(** Deterministic parallel map over OCaml 5 domains.

    Tasks must be independent (no shared mutable state); results come back
    in input order, so parallel and sequential runs are indistinguishable. *)

val default_domains : unit -> int
(** Recommended worker count, leaving one core for the main domain. *)

val set_sequential : bool -> unit
(** Force every map onto the calling domain. Required while a process-wide
    trace sink is installed (the sink is not domain-safe); results are
    identical either way, only wall-clock changes. *)

val sequential : unit -> bool

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init n f] computes [f 0 .. f (n-1)] in parallel. *)
