(** Deterministic parallel map over a persistent pool of OCaml 5 domains.

    Tasks must be independent (no shared mutable state); results come back
    in input order, so parallel and sequential runs are indistinguishable.

    Worker domains are spawned lazily on the first parallel map and then
    reused for the life of the process (the pool grows when a call asks
    for more domains than exist, and is joined at exit), so repeated maps
    pay dispatch latency, not domain-spawn latency.  Work is distributed
    as fixed-size chunks pulled off a shared atomic index; the calling
    domain participates.  An exception in any task is re-raised on the
    calling domain.  A map issued from inside a pool worker (or while
    another map is driving the pool) runs sequentially instead of
    deadlocking. *)

val default_domains : unit -> int
(** Recommended worker count, leaving one core for the main domain.
    The [PSN_DOMAINS] environment variable, when set to a positive
    integer, pins this from the outside (CI re-runs the suite with
    [PSN_DOMAINS=1]); a [set_default_domains] override still wins. *)

val set_default_domains : int option -> unit
(** Override what [default_domains] reports (and so what maps without
    [?domains] use); [None] restores auto-detection. *)

val set_sequential : bool -> unit
(** Force every map onto the calling domain. Required while a process-wide
    trace sink is installed (the sink is not domain-safe); results are
    identical either way, only wall-clock changes. *)

val sequential : unit -> bool

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init n f] computes [f 0 .. f (n-1)] in parallel. *)
