(* Deterministic fan-out over OCaml 5 domains.

   Experiment sweeps run one independent, seeded simulation per parameter
   point; tasks never share mutable state, so a static block partition is
   both safe and reproducible: the output array is in input order whatever
   the number of domains. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* Global single-domain switch: tracing into a process-wide sink is not
   domain-safe, so the CLI flips this before running with --trace. Runs
   stay deterministic either way (results come back in input order). *)
let sequential_only = ref false

let set_sequential b = sequential_only := b
let sequential () = !sequential_only

let map_array ?domains f xs =
  let n = Array.length xs in
  let d =
    if !sequential_only then 1
    else match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if n = 0 then [||]
  else if d = 1 || n = 1 then Array.map f xs
  else begin
    let d = min d n in
    let results = Array.make n None in
    let chunk = (n + d - 1) / d in
    let worker k () =
      let lo = k * chunk in
      let hi = min n (lo + chunk) in
      for i = lo to hi - 1 do
        results.(i) <- Some (f xs.(i))
      done
    in
    let handles = List.init d (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join handles;
    Array.map
      (function
        | Some y -> y
        | None -> assert false)
      results
  end

let map_list ?domains f xs = Array.to_list (map_array ?domains f (Array.of_list xs))

let init ?domains n f = map_array ?domains f (Array.init n (fun i -> i))
