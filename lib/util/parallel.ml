(* Deterministic fan-out over a persistent pool of OCaml 5 domains.

   Experiment sweeps run one independent, seeded simulation per parameter
   point; tasks never share mutable state, so results written at their
   input index are reproducible whatever the number of domains or the
   chunk interleaving.

   Workers are spawned lazily on the first parallel map and kept alive
   for the rest of the process: a sweep of many small maps pays the
   domain spawn cost once instead of per call.  Each map publishes a job
   — a closure pulling fixed-size chunks off a shared atomic index — and
   the submitting domain works alongside the pool until the index is
   exhausted.  The pool grows on demand when a call requests more
   domains than currently exist; it never shrinks. *)

(* Overrides the auto-detected worker count for maps that do not pass
   [?domains] — the hook that lets tests (and a future CLI flag) engage
   the pool on boxes whose [recommended_domain_count] is 1. *)
let default_override = ref None

let set_default_domains n = default_override := n

(* [PSN_DOMAINS] pins the worker count from the outside — CI uses it to
   re-run the whole suite single-domain without touching test code.  It
   sits below [set_default_domains] so programmatic overrides still win,
   and is read per call so a test harness can flip it. *)
let env_domains () =
  match Sys.getenv_opt "PSN_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some d when d >= 1 -> Some d
               | Some _ | None -> None)

let default_domains () =
  match !default_override with
  | Some d -> if d < 1 then 1 else d
  | None -> (
      match env_domains () with
      | Some d -> d
      | None -> max 1 (Domain.recommended_domain_count () - 1))

(* Global single-domain switch: tracing into a process-wide sink is not
   domain-safe, so the CLI flips this before running with --trace. Runs
   stay deterministic either way (results come back in input order). *)
let sequential_only = ref false

let set_sequential b = sequential_only := b
let sequential () = !sequential_only

(* A nested map issued from inside a worker must not block waiting for
   the pool (the pool is busy running its caller): detect it through
   domain-local state and fall back to a plain sequential map. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t;  (* a new job generation was published *)
  work_done : Condition.t;   (* a worker finished its share of the job *)
  mutable body : (unit -> unit) option;  (* current job; [None] when idle *)
  mutable generation : int;
  mutable busy : int;      (* workers still inside the current job *)
  mutable workers : int;
  mutable handles : unit Domain.t list;
  mutable shutdown : bool;
}

let pool =
  {
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    body = None;
    generation = 0;
    busy = 0;
    workers = 0;
    handles = [];
    shutdown = false;
  }

let worker_loop () =
  Domain.DLS.set in_worker true;
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.shutdown) && pool.generation = !my_gen do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.shutdown then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      my_gen := pool.generation;
      let body = pool.body in
      Mutex.unlock pool.mutex;
      (match body with Some b -> b () | None -> ());
      Mutex.lock pool.mutex;
      pool.busy <- pool.busy - 1;
      if pool.busy = 0 then Condition.signal pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let shutdown_pool () =
  Mutex.lock pool.mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work_ready;
  let hs = pool.handles in
  pool.handles <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join hs

let at_exit_registered = ref false

(* Called with [pool.mutex] held. *)
let ensure_workers needed =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit shutdown_pool
  end;
  while pool.workers < needed do
    pool.workers <- pool.workers + 1;
    pool.handles <- Domain.spawn worker_loop :: pool.handles
  done

(* Only one map may drive the pool at a time; concurrent submitters (not
   a pattern this codebase uses, but cheap to make safe) fall back to a
   sequential map instead of deadlocking on the generation protocol. *)
let submit_lock = Mutex.create ()

(* Run [f] over indices [1..n-1] of [xs] on the pool plus the calling
   domain, writing into [results].  Index 0 was computed by the caller to
   seed the result array.  The first exception from any chunk is
   captured, remaining chunks are abandoned, and it is re-raised (with
   its backtrace) on the calling domain once the job drains. *)
let run_pooled d f xs n results =
  let chunk = max 1 (n / (d * 4)) in
  let next = Atomic.make 1 in
  let err = Atomic.make None in
  let body () =
    let continue = ref true in
    while !continue do
      let lo = Atomic.fetch_and_add next chunk in
      if lo >= n then continue := false
      else begin
        let hi = min n (lo + chunk) in
        try
          for i = lo to hi - 1 do
            Array.unsafe_set results i (f (Array.unsafe_get xs i))
          done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set err None (Some (e, bt)));
          Atomic.set next n (* abandon the remaining chunks *)
      end
    done
  in
  Mutex.lock pool.mutex;
  ensure_workers (d - 1);
  pool.body <- Some body;
  pool.generation <- pool.generation + 1;
  pool.busy <- pool.workers;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  body ();
  Mutex.lock pool.mutex;
  while pool.busy > 0 do
    Condition.wait pool.work_done pool.mutex
  done;
  pool.body <- None;
  Mutex.unlock pool.mutex;
  match Atomic.get err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_array ?domains f xs =
  let n = Array.length xs in
  let d =
    if !sequential_only then 1
    else match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let d = min d n in
  if n = 0 then [||]
  else if d <= 1 || n = 1 || Domain.DLS.get in_worker then Array.map f xs
  else if not (Mutex.try_lock submit_lock) then Array.map f xs
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock submit_lock)
      (fun () ->
        let r0 = f xs.(0) in
        let results = Array.make n r0 in
        run_pooled d f xs n results;
        results)

let map_list ?domains f xs = Array.to_list (map_array ?domains f (Array.of_list xs))

let init ?domains n f = map_array ?domains f (Array.init n (fun i -> i))
