(* Binary min-heap over an explicit comparison function.

   Generic utility heap (the simulation engine uses the monomorphic
   [Psn_sim.Event_queue] instead); the implementation keeps the classic
   array layout with sift-up/sift-down and no allocation beyond amortized
   array growth.

   Like [Vec], construction takes a [dummy] element used to fill unused
   slots.  [pop] moves the last element to the root and must clear the
   vacated slot with it — leaving the old reference in place would keep
   every popped payload (closures, in the engine days of this module)
   reachable from the backing array until overwritten by a later [add]. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  dummy : 'a;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp ~dummy () = { cmp; dummy; data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  if cap = 0 then t.data <- Array.make 16 t.dummy
  else begin
    let data = Array.make (2 * cap) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    (* Clear the vacated slot so neither the moved element nor the popped
       one is retained by the backing array. *)
    t.data.(t.len) <- t.dummy;
    Some top
  end

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let of_list ~cmp ~dummy xs =
  let t = create ~cmp ~dummy () in
  List.iter (add t) xs;
  t

(* Destructive: drains the heap in ascending order. *)
let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
