(* Benchmark harness.

   Part 1 (E10): Bechamel microbenchmarks of every clock protocol's hot
   operations — one Test.make per operation — plus the detection fast
   path and the lattice counter.

   Part 2: the claim-reproduction experiment tables E1–E12 (quick
   profiles), printed through the same code the CLI uses, so

       dune exec bench/main.exe

   regenerates every table this reproduction reports. *)

open Bechamel
open Toolkit

module Sim_time = Psn_sim.Sim_time

let n = 16

(* --- E10 subjects ------------------------------------------------------ *)

let lamport_tick =
  let c = Psn_clocks.Lamport.create ~me:0 in
  Test.make ~name:"lamport.tick" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Lamport.tick c))

let lamport_receive =
  let c = Psn_clocks.Lamport.create ~me:0 in
  Test.make ~name:"lamport.receive" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Lamport.receive c 42))

let vector_tick =
  let c = Psn_clocks.Vector_clock.create ~n ~me:0 in
  Test.make ~name:"vector.tick(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Vector_clock.tick c))

let vector_receive =
  let c = Psn_clocks.Vector_clock.create ~n ~me:0 in
  let stamp = Array.make n 5 in
  Test.make ~name:"vector.receive(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Vector_clock.receive c stamp))

let strobe_scalar_tick =
  let c = Psn_clocks.Strobe_scalar.create ~me:0 in
  Test.make ~name:"strobe_scalar.tick" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Strobe_scalar.tick_and_strobe c))

let strobe_vector_tick =
  let c = Psn_clocks.Strobe_vector.create ~n ~me:0 in
  Test.make ~name:"strobe_vector.tick(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Strobe_vector.tick_and_strobe c))

let strobe_vector_receive =
  let c = Psn_clocks.Strobe_vector.create ~n ~me:0 in
  let stamp = Array.make n 7 in
  Test.make ~name:"strobe_vector.receive(n=16)" (Staged.stage @@ fun () ->
      Psn_clocks.Strobe_vector.receive_strobe c stamp)

let vector_compare =
  let a = Array.init n (fun i -> i) and b = Array.init n (fun i -> i + 1) in
  Test.make ~name:"vector.concurrent(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Vector_clock.concurrent a b))

let matrix_receive =
  let c = Psn_clocks.Matrix_clock.create ~n:8 ~me:0 in
  let stamp = Array.init 8 (fun _ -> Array.make 8 3) in
  Test.make ~name:"matrix.receive(n=8)" (Staged.stage @@ fun () ->
      Psn_clocks.Matrix_clock.receive c ~from:1 stamp)

let hlc_tick =
  let hw = Psn_clocks.Physical_clock.perfect () in
  let c = Psn_clocks.Hlc.create ~me:0 hw in
  Test.make ~name:"hlc.tick" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Hlc.tick c ~now:(Sim_time.of_ms 5)))

let engine_event =
  Test.make ~name:"engine.schedule+run(100)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      for i = 1 to 100 do
        ignore
          (Psn_sim.Engine.schedule_at engine (Sim_time.of_us i) (fun () -> ()))
      done;
      Psn_sim.Engine.run engine)

(* Twin of [engine_event] with a live trace sink: the pair bounds the
   tracing overhead (disabled must stay within a few percent of the
   untraced engine; enabled shows the full recording cost). *)
let engine_event_traced =
  Test.make ~name:"engine.schedule+run(100)+trace" (Staged.stage @@ fun () ->
      let sink = Psn_obs.Trace.create () in
      let engine = Psn_sim.Engine.create ~tracer:sink () in
      for i = 1 to 100 do
        ignore
          (Psn_sim.Engine.schedule_at engine (Sim_time.of_us i) (fun () -> ()))
      done;
      Psn_sim.Engine.run engine)

let predicate_eval =
  let open Psn_predicates.Expr in
  let predicate =
    sum (List.init 8 (fun i -> var ~name:"x" ~loc:i -? var ~name:"y" ~loc:i))
    >? int 100
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      Hashtbl.replace tbl { name = "x"; loc = i } (Psn_world.Value.Int (20 + i));
      Hashtbl.replace tbl { name = "y"; loc = i } (Psn_world.Value.Int 5))
    (List.init 8 (fun i -> i));
  Test.make ~name:"predicate.eval(8 doors)" (Staged.stage @@ fun () ->
      ignore (eval_bool ~env:(Hashtbl.find_opt tbl) predicate))

let lattice_count =
  (* 3 processes x 4 events, no communication: 125 cuts. *)
  let stamps =
    Array.init 3 (fun i ->
        Array.init 4 (fun k ->
            let v = Array.make 3 0 in
            v.(i) <- k + 1;
            v))
  in
  Test.make ~name:"lattice.count(3x4)" (Staged.stage @@ fun () ->
      ignore (Psn_lattice.Lattice.count_consistent stamps))

let detector_run =
  Test.make ~name:"hall.run(4 doors, 5min)" (Staged.stage @@ fun () ->
      let config =
        {
          Psn.Config.default with
          n = 4;
          horizon = Sim_time.of_sec 300;
          delay =
            Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 10)
              ~max:(Sim_time.of_ms 100);
        }
      in
      ignore (Psn_scenarios.Exhibition_hall.run config))

let flood_ring =
  Test.make ~name:"flood.ring(n=8)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let flood =
        Psn_network.Flood.create engine
          ~topology:(Psn_util.Graph.ring ~n:8)
          ~delay:Psn_sim.Delay_model.synchronous
      in
      Psn_network.Flood.flood flood ~src:0 ();
      Psn_sim.Engine.run engine)

let causal_burst =
  Test.make ~name:"causal_broadcast.burst(4x5)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let cb =
        Psn_middleware.Causal_broadcast.create engine ~n:4
          ~delay:Psn_sim.Delay_model.synchronous
          ~deliver:(fun ~dst:_ ~src:_ () -> ())
          ()
      in
      for src = 0 to 3 do
        for _ = 1 to 5 do
          Psn_middleware.Causal_broadcast.broadcast cb ~src ()
        done
      done;
      Psn_sim.Engine.run engine)

let snapshot_round =
  Test.make ~name:"snapshot.round(n=4)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let sys =
        Psn_middleware.Snapshot.create engine ~n:4
          ~delay:Psn_sim.Delay_model.synchronous
          ~local_state:(fun i -> i)
          ~apply:(fun ~dst:_ ~src:_ () -> ())
          ()
      in
      Psn_middleware.Snapshot.initiate sys ~by:0;
      Psn_sim.Engine.run engine)

let mutex_round =
  Test.make ~name:"mutex.round(n=4)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let mutex =
        Psn_middleware.Mutex.create engine ~n:4
          ~delay:Psn_sim.Delay_model.synchronous
      in
      for who = 0 to 3 do
        Psn_middleware.Mutex.request mutex ~who ~grant:(fun () ->
            ignore
              (Psn_sim.Engine.schedule_after engine (Sim_time.of_us 1)
                 (fun () -> Psn_middleware.Mutex.release mutex ~who)))
      done;
      Psn_sim.Engine.run engine)

let groups =
  [
    Test.make_grouped ~name:"clocks"
      [
        lamport_tick; lamport_receive; vector_tick; vector_receive;
        strobe_scalar_tick; strobe_vector_tick; strobe_vector_receive;
        vector_compare; matrix_receive; hlc_tick;
      ];
    Test.make_grouped ~name:"infra"
      [
        engine_event; engine_event_traced; predicate_eval; lattice_count;
        detector_run;
      ];
    Test.make_grouped ~name:"middleware"
      [ flood_ring; causal_burst; snapshot_round; mutex_round ];
  ]

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  Benchmark.all cfg instances test

let analyze raw =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let run_microbenches () =
  print_endline "== E10: clock and infrastructure microbenchmarks ==";
  print_endline
    "claim: implied scaling - strobe/clock operations are cheap enough for\n\
     sensor-node firmware; vector ops scale with n\n";
  let rows = ref [] in
  List.iter
    (fun group ->
      let results = analyze (benchmark group) in
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | _ -> "n/a"
          in
          rows := [ name; est ] :: !rows)
        results)
    groups;
  let rows = List.sort compare !rows in
  Psn_util.Table.print ~headers:[ "operation"; "ns/op" ] ~rows ();
  print_newline ()

let () =
  let quick =
    match Sys.getenv_opt "PSN_BENCH_FULL" with Some _ -> false | None -> true
  in
  run_microbenches ();
  Psn_experiments.Experiments.print_all ~quick ()
