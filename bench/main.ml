(* Benchmark harness.

   Part 1 (E10): Bechamel microbenchmarks of every clock protocol's hot
   operations — one Test.make per operation — plus the detection fast
   path and the lattice counter.

   Part 2: the claim-reproduction experiment tables E1–E12 (quick
   profiles), printed through the same code the CLI uses, so

       dune exec bench/main.exe

   regenerates every table this reproduction reports. *)

open Bechamel
open Toolkit

module Sim_time = Psn_sim.Sim_time

let n = 16

(* --- E10 subjects ------------------------------------------------------ *)

let lamport_tick =
  let c = Psn_clocks.Lamport.create ~me:0 in
  Test.make ~name:"lamport.tick" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Lamport.tick c))

let lamport_receive =
  let c = Psn_clocks.Lamport.create ~me:0 in
  Test.make ~name:"lamport.receive" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Lamport.receive c 42))

let vector_tick =
  let c = Psn_clocks.Vector_clock.create ~n ~me:0 in
  Test.make ~name:"vector.tick(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Vector_clock.tick c))

(* The production receive path since the stamp plane landed: piggybacked
   handle in, in-place merge + tick, no snapshot (the linearizer discards
   it).  [vector.receive_copy] below keeps the legacy copy-stamp API
   under the bench so the arena's win stays visible. *)
let vector_receive =
  let plane = Psn_clocks.Stamp_plane.create ~n () in
  let c = Psn_clocks.Vector_clock.create ~n ~me:0 in
  let h = Psn_clocks.Stamp_plane.of_array plane (Array.make n 5) in
  Test.make ~name:"vector.receive(n=16)" (Staged.stage @@ fun () ->
      Psn_clocks.Vector_clock.receive_from plane c h)

let vector_receive_copy =
  let c = Psn_clocks.Vector_clock.create ~n ~me:0 in
  let stamp = Array.make n 5 in
  Test.make ~name:"vector.receive_copy(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Vector_clock.receive c stamp))

(* VC3 with the post-receive snapshot allocated in the plane; the arena
   is recycled every 128 stamps (a run-sized window that stays
   cache-resident) so the reset cost is amortized into the figure
   instead of growing the backing array without bound. *)
let vector_receive_into =
  let plane = Psn_clocks.Stamp_plane.create ~n () in
  let c = Psn_clocks.Vector_clock.create ~n ~me:0 in
  let msg = Array.make n 5 in
  let h = ref (Psn_clocks.Stamp_plane.of_array plane msg) in
  let left = ref 128 in
  Test.make ~name:"vector.receive_into(n=16)" (Staged.stage @@ fun () ->
      decr left;
      if !left = 0 then begin
        left := 128;
        Psn_clocks.Stamp_plane.reset plane;
        h := Psn_clocks.Stamp_plane.of_array plane msg
      end;
      ignore (Psn_clocks.Vector_clock.receive_into plane c !h))

let strobe_scalar_tick =
  let c = Psn_clocks.Strobe_scalar.create ~me:0 in
  Test.make ~name:"strobe_scalar.tick" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Strobe_scalar.tick_and_strobe c))

let strobe_vector_tick =
  let c = Psn_clocks.Strobe_vector.create ~n ~me:0 in
  Test.make ~name:"strobe_vector.tick(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Strobe_vector.tick_and_strobe c))

let strobe_vector_receive =
  let c = Psn_clocks.Strobe_vector.create ~n ~me:0 in
  let stamp = Array.make n 7 in
  Test.make ~name:"strobe_vector.receive(n=16)" (Staged.stage @@ fun () ->
      Psn_clocks.Strobe_vector.receive_strobe c stamp)

let vector_compare =
  let a = Array.init n (fun i -> i) and b = Array.init n (fun i -> i + 1) in
  Test.make ~name:"vector.concurrent(n=16)" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Vector_clock.concurrent a b))

let matrix_receive =
  let c = Psn_clocks.Matrix_clock.create ~n:8 ~me:0 in
  let stamp = Array.init 8 (fun _ -> Array.make 8 3) in
  Test.make ~name:"matrix.receive(n=8)" (Staged.stage @@ fun () ->
      Psn_clocks.Matrix_clock.receive c ~from:1 stamp)

(* Row-stamp receive against the full-matrix one above: O(n) merge of a
   plane handle instead of the n² matrix merge. *)
let matrix_receive_into =
  let plane = Psn_clocks.Stamp_plane.create ~n:8 () in
  let c = Psn_clocks.Matrix_clock.create ~n:8 ~me:0 in
  let h = Psn_clocks.Stamp_plane.of_array plane (Array.make 8 3) in
  Test.make ~name:"matrix.receive_into(n=8)" (Staged.stage @@ fun () ->
      Psn_clocks.Matrix_clock.receive_row_from plane c ~from:1 h)

let hlc_tick =
  let hw = Psn_clocks.Physical_clock.perfect () in
  let c = Psn_clocks.Hlc.create ~me:0 hw in
  Test.make ~name:"hlc.tick" (Staged.stage @@ fun () ->
      ignore (Psn_clocks.Hlc.tick c ~now:(Sim_time.of_ms 5)))

let engine_event =
  Test.make ~name:"engine.schedule+run(100)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      for i = 1 to 100 do
        ignore
          (Psn_sim.Engine.schedule_at engine (Sim_time.of_us i) (fun () -> ()))
      done;
      Psn_sim.Engine.run engine)

(* Twin of [engine_event] with a live trace sink: the pair bounds the
   tracing overhead (disabled must stay within a few percent of the
   untraced engine; enabled shows the full recording cost). *)
let engine_event_traced =
  Test.make ~name:"engine.schedule+run(100)+trace" (Staged.stage @@ fun () ->
      let sink = Psn_obs.Trace.create () in
      let engine = Psn_sim.Engine.create ~tracer:sink () in
      for i = 1 to 100 do
        ignore
          (Psn_sim.Engine.schedule_at engine (Sim_time.of_us i) (fun () -> ()))
      done;
      Psn_sim.Engine.run engine)

let predicate_eval =
  let open Psn_predicates.Expr in
  let predicate =
    sum (List.init 8 (fun i -> var ~name:"x" ~loc:i -? var ~name:"y" ~loc:i))
    >? int 100
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      Hashtbl.replace tbl { name = "x"; loc = i } (Psn_world.Value.Int (20 + i));
      Hashtbl.replace tbl { name = "y"; loc = i } (Psn_world.Value.Int 5))
    (List.init 8 (fun i -> i));
  Test.make ~name:"predicate.eval(8 doors)" (Staged.stage @@ fun () ->
      ignore (eval_bool ~env:(Hashtbl.find_opt tbl) predicate))

(* Compiled twin of [predicate_eval]: same predicate and bindings, one
   compile, per-op cost is the flat-bytecode run over int slots.  The
   speedup line in bench-compare pairs these two subjects. *)
let predicate_eval_compiled =
  let open Psn_predicates.Expr in
  let predicate =
    sum (List.init 8 (fun i -> var ~name:"x" ~loc:i -? var ~name:"y" ~loc:i))
    >? int 100
  in
  let prog = Psn_predicates.Compiled.compile predicate in
  let env = Psn_predicates.Compiled.create_env prog in
  List.iter
    (fun i ->
      Psn_predicates.Compiled.set_int env
        (Psn_predicates.Compiled.slot prog { name = "x"; loc = i })
        (20 + i);
      Psn_predicates.Compiled.set_int env
        (Psn_predicates.Compiled.slot prog { name = "y"; loc = i })
        5)
    (List.init 8 (fun i -> i));
  Test.make ~name:"predicate.eval.compiled(8 doors)" (Staged.stage @@ fun () ->
      ignore (Psn_predicates.Compiled.eval_bool prog env))

(* Independent (no communication) stamps: the worst case where every one
   of the (k+1)^n cuts is consistent. *)
let independent_stamps ~n ~k =
  Array.init n (fun i ->
      Array.init k (fun e ->
          let v = Array.make n 0 in
          v.(i) <- e + 1;
          v))

let lattice_count =
  (* 3 processes x 4 events, no communication: 125 cuts. *)
  let stamps = independent_stamps ~n:3 ~k:4 in
  Test.make ~name:"lattice.count(3x4)" (Staged.stage @@ fun () ->
      ignore (Psn_lattice.Lattice.count_consistent stamps))

let detector_run =
  Test.make ~name:"hall.run(4 doors, 5min)" (Staged.stage @@ fun () ->
      let config =
        {
          Psn.Config.default with
          n = 4;
          horizon = Sim_time.of_sec 300;
          delay =
            Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 10)
              ~max:(Sim_time.of_ms 100);
        }
      in
      ignore (Psn_scenarios.Exhibition_hall.run config))

let flood_ring =
  Test.make ~name:"flood.ring(n=8)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let flood =
        Psn_network.Flood.create engine
          ~topology:(Psn_util.Graph.ring ~n:8)
          ~delay:Psn_sim.Delay_model.synchronous
      in
      Psn_network.Flood.flood flood ~src:0 ();
      Psn_sim.Engine.run engine)

(* Arena-vs-copy pair: [burst] runs the default stamp-plane broadcast
   vectors, [burst_copy] forces the per-message array copies. *)
let causal_burst_with ~name ~arena =
  Test.make ~name (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let cb =
        Psn_middleware.Causal_broadcast.create ~arena engine ~n:4
          ~delay:Psn_sim.Delay_model.synchronous
          ~deliver:(fun ~dst:_ ~src:_ () -> ())
          ()
      in
      for src = 0 to 3 do
        for _ = 1 to 5 do
          Psn_middleware.Causal_broadcast.broadcast cb ~src ()
        done
      done;
      Psn_sim.Engine.run engine)

let causal_burst = causal_burst_with ~name:"causal_broadcast.burst(4x5)" ~arena:true
let causal_burst_copy =
  causal_burst_with ~name:"causal_broadcast.burst_copy(4x5)" ~arena:false

let snapshot_round =
  Test.make ~name:"snapshot.round(n=4)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let sys =
        Psn_middleware.Snapshot.create engine ~n:4
          ~delay:Psn_sim.Delay_model.synchronous
          ~local_state:(fun i -> i)
          ~apply:(fun ~dst:_ ~src:_ () -> ())
          ()
      in
      Psn_middleware.Snapshot.initiate sys ~by:0;
      Psn_sim.Engine.run engine)

let mutex_round =
  Test.make ~name:"mutex.round(n=4)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let mutex =
        Psn_middleware.Mutex.create engine ~n:4
          ~delay:Psn_sim.Delay_model.synchronous
      in
      for who = 0 to 3 do
        Psn_middleware.Mutex.request mutex ~who ~grant:(fun () ->
            ignore
              (Psn_sim.Engine.schedule_after engine (Sim_time.of_us 1)
                 (fun () -> Psn_middleware.Mutex.release mutex ~who)))
      done;
      Psn_sim.Engine.run engine)

(* --- PR2 event-core subjects ------------------------------------------- *)

let noop () = ()

let engine_create =
  Test.make ~name:"engine.create" (Staged.stage @@ fun () ->
      ignore (Sys.opaque_identity (Psn_sim.Engine.create ())))

(* Fast-path twin of [engine_event]: fire-and-forget scheduling, no
   cancellation handles. *)
let engine_event_unit =
  Test.make ~name:"engine.schedule_unit+run(100)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      for i = 1 to 100 do
        Psn_sim.Engine.schedule_at_unit engine (Sim_time.of_us i) noop
      done;
      Psn_sim.Engine.run engine)

(* Steady-state queue churn: one add + one pop against [k] pending
   events, so the heap depth under test stays constant. *)
let queue_add_pop ~label k =
  let q = Psn_sim.Event_queue.create ~dummy:noop () in
  for i = 0 to k - 1 do
    Psn_sim.Event_queue.add q ~time_ns:i noop
  done;
  let t = ref k in
  Test.make ~name:(Printf.sprintf "queue.add+pop(%s pending)" label)
    (Staged.stage @@ fun () ->
      incr t;
      Psn_sim.Event_queue.add q ~time_ns:!t noop;
      let (_ : unit -> unit) = Sys.opaque_identity (Psn_sim.Event_queue.pop_exn q) in
      ())

let queue_1k = queue_add_pop ~label:"1k" 1_000
let queue_100k = queue_add_pop ~label:"100k" 100_000

let net_broadcast =
  Test.make ~name:"net.broadcast(n=16)" (Staged.stage @@ fun () ->
      let engine = Psn_sim.Engine.create () in
      let net =
        Psn_network.Net.create engine ~n:16
          ~delay:Psn_sim.Delay_model.synchronous
      in
      for i = 0 to 15 do
        Psn_network.Net.set_handler net i (fun ~src:_ () -> ())
      done;
      Psn_network.Net.broadcast net ~src:0 ();
      Psn_sim.Engine.run engine)

(* Dispatch latency of the persistent domain pool: tiny payload, so the
   handshake (publish job, wake workers, join) dominates. *)
let pool_dispatch =
  let xs = Array.init 16 (fun i -> i) in
  Test.make ~name:"pool.dispatch(16)" (Staged.stage @@ fun () ->
      ignore
        (Sys.opaque_identity
           (Psn_util.Parallel.map_array ~domains:2 (fun x -> x + 1) xs)))

(* --- PR3 packed-lattice subjects ---------------------------------------- *)

(* Larger free lattice: 2401 cuts, exercises wide frontiers. *)
let lattice_count_4x6 =
  let stamps = independent_stamps ~n:4 ~k:6 in
  Test.make ~name:"lattice.count(4x6)" (Staged.stage @@ fun () ->
      ignore (Psn_lattice.Lattice.count_consistent stamps))

(* The generic array-cut walk on the same 3x4 execution: the packed
   engine's speedup is lattice.count(3x4) against this subject. *)
let lattice_count_generic =
  let stamps = independent_stamps ~n:3 ~k:4 in
  Test.make ~name:"lattice.count_generic(3x4)" (Staged.stage @@ fun () ->
      ignore (Psn_lattice.Lattice.count_consistent_generic stamps))

(* Fused Definitely over the free 3x4 lattice with φ = ⊤ only: the walk
   sweeps all 124 non-top cuts before concluding [Some true]. *)
let modal_definitely =
  let stamps = independent_stamps ~n:3 ~k:4 in
  let holds (c : int array) = c.(0) = 4 && c.(1) = 4 && c.(2) = 4 in
  Test.make ~name:"modal.definitely(3x4)" (Staged.stage @@ fun () ->
      ignore (Psn_lattice.Modal.definitely stamps ~holds))

(* --- PR7 sharded-engine subjects ----------------------------------------- *)

(* Headline scaling workload: the shard-aware exhibition hall at 1000
   doors, run once on the single-queue oracle and once per shard count
   on the conservative-window engine.  Same construction and seed
   everywhere (the differential suite proves the results identical), so
   the ns/op ratios are pure engine overhead/scaling.  On a single-core
   host the sharded subjects measure the window-barrier cost; the
   speedup target needs real parallel hardware (see README). *)
let sharded_hall_cfg =
  let detect =
    {
      Psn_scenarios.Sharded.default_detect with
      groups = 8;
      flush_period = Sim_time.of_ms 250;
      horizon = Sim_time.of_sec 60;
    }
  in
  {
    Psn_scenarios.Sharded.doors = 1000;
    capacity = 120;
    visitors = 400;
    dwell_mean = 45.0;
    detect;
  }

let hall_run_single =
  Test.make ~name:"hall.run(n=1000)" (Staged.stage @@ fun () ->
      ignore
        (Sys.opaque_identity
           (Psn_scenarios.Sharded.hall ~cfg:sharded_hall_cfg
              (Psn_sim.Exec.single ()))))

let hall_run_sharded k =
  let lookahead =
    Psn_sim.Delay_model.min_delay sharded_hall_cfg.detect.delay
  in
  Test.make ~name:(Printf.sprintf "hall.run.sharded(%d)" k)
    (Staged.stage @@ fun () ->
      ignore
        (Sys.opaque_identity
           (Psn_scenarios.Sharded.hall ~cfg:sharded_hall_cfg
              (Psn_sim.Exec.sharded ~shards:k ~lookahead ()))))

(* --- PR8 partitioned-checker subjects ------------------------------------ *)

(* Checker flush cost under a conjunctive predicate, at a fixed update
   count (1000) and growing n.  Groups hold 25 sources each, so the
   per-group compiled residual — the unit of work a partitioned apply
   re-evaluates — is constant in n; the verdict-edge fold is
   O(log groups).  The n=100 → n=1000 pair therefore measures whether
   apply cost really decoupled from predicate width (the interpreted
   checker re-walked all n conjuncts per applied update); the K=1 → K=4
   pair adds the window-barrier overhead. *)
let detector_flush ~n ~k =
  let delay =
    Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 2)
      ~max:(Sim_time.of_ms 5)
  in
  let arena = Psn_detection.Detector_arena.create () in
  let groups = n / 25 in
  let cfg =
    {
      Psn_detection.Sharded_detector.n;
      groups;
      group_of = (fun pid -> pid * groups / n);
      eps = Sim_time.of_ms 1;
      hold = Sim_time.of_ms 20;
      flush_period = Sim_time.of_ms 10;
      causal_stamps = false;
    }
  in
  let predicate =
    let open Psn_predicates.Expr in
    match List.init n (fun i -> var ~name:"v" ~loc:i >=? int 0) with
    | first :: rest -> List.fold_left ( &&& ) first rest
    | [] -> assert false
  in
  let horizon = Sim_time.of_ms 1_050 in
  Test.make ~name:(Printf.sprintf "detector.flush(n=%d, K=%d)" n k)
    (Staged.stage @@ fun () ->
      let exec =
        Psn_sim.Exec.sharded ~shards:k
          ~lookahead:(Psn_sim.Delay_model.min_delay delay) ()
      in
      let det =
        Psn_detection.Sharded_detector.create ~arena exec ~cfg ~delay
          ~predicate ()
      in
      (* 10k updates, round-robin over the sources at 0.1 ms spacing
         (1 s span): enough applied updates that the apply path, not the
         O(n) detector construction, dominates the measurement. *)
      for j = 0 to 9_999 do
        let src = j mod n in
        Psn_sim.Engine.schedule_at_unit
          (Psn_sim.Exec.engine exec ~group:(cfg.group_of src))
          (Sim_time.of_us ((j + 1) * 100))
          (fun () ->
            Psn_detection.Sharded_detector.emit det ~src ~var:"v" ~value:j)
      done;
      Psn_sim.Exec.run exec ~until:horizon;
      ignore
        (Sys.opaque_identity (Psn_detection.Sharded_detector.occurrences det)))

let detector_flush_100 = detector_flush ~n:100 ~k:1
let detector_flush_1000 = detector_flush ~n:1000 ~k:1
let detector_flush_1000_k4 = detector_flush ~n:1000 ~k:4

(* --- PR6 trace-analytics subjects ---------------------------------------- *)

(* A synthetic, time-ordered record stream: 4k flow edges into checker 0
   with jittered delivery, one occurrence every 16 edges whose window
   reaches back exactly to its trigger's send — so the analyzer's
   critical-path resolution runs on every occurrence.  Built once and
   replayed by both subjects. *)
let analyzer_sink =
  lazy
    (let sink = Psn_obs.Trace.create () in
     for i = 0 to 4095 do
       let t = (i + 1) * 1_000 in
       let src = 1 + (i mod 3) in
       let flow = Psn_obs.Trace.fresh_flow sink in
       Psn_obs.Trace.emit sink ~time:t ~pid:src
         (Psn_obs.Trace.Net_send
            { src; dst = 0; words = 4; kind = "detector"; flow });
       Psn_obs.Trace.emit sink
         ~time:(t + 300 + (i mod 7 * 50))
         ~pid:0
         (Psn_obs.Trace.Net_deliver { src; dst = 0; kind = "detector"; flow });
       if i mod 16 = 0 then
         Psn_obs.Trace.emit sink ~time:(t + 600) ~pid:0
           (Psn_obs.Trace.Detector_occurrence
              { verdict = "positive"; window_ns = 600 })
     done;
     sink)

(* Analyzer throughput, post-hoc vs online: same stream, the online twin
   carries a retirement horizon so its edge ring keeps retiring while it
   feeds.  ns/op here is per full 4k-edge replay. *)
let analyze_replay ~name ~horizon_ns =
  let sink = Lazy.force analyzer_sink in
  Test.make ~name (Staged.stage @@ fun () ->
      let az = Psn_obs.Analyze.create ?horizon_ns () in
      Psn_obs.Analyze.feed_sink az sink;
      ignore (Sys.opaque_identity (Psn_obs.Analyze.occurrences az)))

let analyze_posthoc =
  analyze_replay ~name:"analyze.posthoc(4k edges)" ~horizon_ns:None

let analyze_online =
  analyze_replay ~name:"analyze.online(4k edges)" ~horizon_ns:(Some 50_000)

(* --- PR9 shard-observability subject -------------------------------------- *)

(* The K=4 sharded hall run plus a full [Analyze.sharded] pass over its
   window counters.  Against infra/hall.run.sharded(4) — the identical
   run, whose engine records the same always-on flat-int counters — the
   ratio isolates the post-hoc analysis cost and bounds the whole
   observability tax at a few percent. *)
let shardstats_overhead =
  let lookahead =
    Psn_sim.Delay_model.min_delay sharded_hall_cfg.detect.delay
  in
  Test.make ~name:"shardstats.overhead" (Staged.stage @@ fun () ->
      let exec = Psn_sim.Exec.sharded ~shards:4 ~lookahead () in
      ignore
        (Sys.opaque_identity
           (Psn_scenarios.Sharded.hall ~cfg:sharded_hall_cfg exec));
      match Psn_sim.Exec.stats exec with
      | Some st -> ignore (Sys.opaque_identity (Psn_obs.Analyze.sharded st))
      | None -> ())

(* --- PR10 streaming-lattice subjects -------------------------------------- *)

module Streaming = Psn_lattice.Streaming

(* Bounded-slab synthetic stream: 4 processes in near-lockstep rounds,
   each event carrying knowledge of every other process up to one round
   back, so the live slab stays a few cuts wide whatever the run length.
   The 10k/100k pair plus the peak_live_cuts evidence rows appended
   below carry the bounded-memory claim in psn-bench/1 form: ns/op
   grows ~10x with the event count while the peak occupancy rows stay
   identical. *)
let stream_n = 4

let stream_walk ~events =
  let rounds = events / stream_n in
  let s =
    Streaming.create ~n:stream_n ~holds:(fun c -> c.(0) land 1 = 0) ()
  in
  let stamp = Array.make stream_n 0 in
  for k = 0 to rounds - 1 do
    for i = 0 to stream_n - 1 do
      for j = 0 to stream_n - 1 do
        stamp.(j) <- (if j = i then k + 1 else max 0 (k - 1))
      done;
      Streaming.observe s ~pid:i ~stamp
    done
  done;
  Streaming.finish s;
  s

let lattice_stream ~label ~events =
  Test.make ~name:(Printf.sprintf "lattice.stream(events=%s)" label)
    (Staged.stage @@ fun () ->
      ignore (Sys.opaque_identity (stream_walk ~events)))

let lattice_stream_10k = lattice_stream ~label:"10k" ~events:10_000
let lattice_stream_100k = lattice_stream ~label:"100k" ~events:100_000

(* End-to-end online detection: 3 monitors (the cut lattice is
   exponential in concurrency, so modal walks run narrow), 2k updates
   round-robin at 0.5 ms spacing with 2–5 ms delays — slower than the
   inter-update gap, so flushes see genuinely concurrent stamps — on the
   10 ms hold-back flush schedule.  The arena is shared across
   iterations, so per-op construction is the amortized recycle path, not
   the O(n) fresh build ([Profile] splits it out as detector.setup). *)
let detector_stream_flush =
  let delay =
    Psn_sim.Delay_model.bounded_uniform ~min:(Sim_time.of_ms 2)
      ~max:(Sim_time.of_ms 5)
  in
  let n = 3 in
  let cfg =
    {
      Psn_detection.Streaming_detector.n;
      groups = 1;
      group_of = (fun _ -> 0);
      eps = Sim_time.of_ms 1;
      hold = Sim_time.of_ms 20;
      flush_period = Sim_time.of_ms 10;
      cap = 200_000;
    }
  in
  let predicate =
    let open Psn_predicates.Expr in
    match List.init n (fun i -> var ~name:"v" ~loc:i >=? int 0) with
    | first :: rest -> List.fold_left ( &&& ) first rest
    | [] -> assert false
  in
  let arena = Psn_detection.Detector_arena.create () in
  Test.make ~name:(Printf.sprintf "detector.stream.flush(n=%d)" n)
    (Staged.stage @@ fun () ->
      let exec = Psn_sim.Exec.single () in
      let det =
        Psn_detection.Streaming_detector.create ~arena exec ~cfg ~delay
          ~predicate ()
      in
      for j = 0 to 1_999 do
        let src = j mod n in
        Psn_sim.Engine.schedule_at_unit
          (Psn_sim.Exec.engine exec ~group:0)
          (Sim_time.of_us ((j + 1) * 500))
          (fun () ->
            Psn_detection.Streaming_detector.emit det ~src ~var:"v" ~value:j)
      done;
      Psn_sim.Exec.run exec ~until:(Sim_time.of_ms 1_050);
      Psn_detection.Streaming_detector.finish det;
      ignore
        (Sys.opaque_identity (Psn_detection.Streaming_detector.edges det)))

(* Named subject groups; names in reports are "group/subject". *)
let subjects =
  [
    ( "clocks",
      [
        lamport_tick; lamport_receive; vector_tick; vector_receive;
        vector_receive_copy; vector_receive_into; strobe_scalar_tick;
        strobe_vector_tick; strobe_vector_receive; vector_compare;
        matrix_receive; matrix_receive_into; hlc_tick;
      ] );
    ( "infra",
      [
        engine_event; engine_event_traced; predicate_eval;
        predicate_eval_compiled; lattice_count; detector_run; hall_run_single;
        hall_run_sharded 1; hall_run_sharded 2; hall_run_sharded 4;
        detector_flush_100; detector_flush_1000; detector_flush_1000_k4;
        detector_stream_flush;
      ] );
    ( "middleware",
      [ flood_ring; causal_burst; causal_burst_copy; snapshot_round; mutex_round ] );
    ( "event_core",
      [
        engine_create; engine_event_unit; queue_1k; queue_100k; net_broadcast;
        pool_dispatch;
      ] );
    ( "lattice",
      [
        lattice_count_4x6; lattice_count_generic; modal_definitely;
        lattice_stream_10k; lattice_stream_100k;
      ] );
    ("obs", [ analyze_posthoc; analyze_online; shardstats_overhead ]);
  ]

(* Per-subject sampling budget, seconds.  The default keeps the full
   sweep fast; committed snapshots are recorded with a larger quota
   (PSN_BENCH_QUOTA=2) so the OLS fit averages over scheduler noise. *)
let quota =
  match Option.bind (Sys.getenv_opt "PSN_BENCH_QUOTA") float_of_string_opt with
  | Some q when q > 0.0 -> q
  | _ -> 0.25

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second quota) ()
  in
  Benchmark.all cfg instances test

let analyze raw =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Split a --only spec on commas at parenthesis depth zero, so patterns
   may quote full subject names whose argument lists contain commas —
   "hall.run(4 doors, 5min)" or "hall.run.sharded(4)" — consistently
   with the (n=...) naming everywhere else. *)
let split_patterns spec =
  let out = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          if !depth > 0 then decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 -> flush ()
      | c -> Buffer.add_char buf c)
    spec;
  flush ();
  List.rev !out

(* Run the (optionally filtered) subjects and return [(name, ns/op)]
   rows sorted by name; estimates that failed to converge come back as
   [None].  [only] is a list of substrings; a subject runs when any
   matches its "group/subject" name. *)
let run_microbenches ?only () =
  let keep group t =
    match only with
    | None -> true
    | Some pats ->
        let name = group ^ "/" ^ Test.name t in
        List.exists (contains name) pats
  in
  let results = ref [] in
  List.iter
    (fun (group, tests) ->
      match List.filter (keep group) tests with
      | [] -> ()
      | tests ->
          let analyzed = analyze (benchmark (Test.make_grouped ~name:group tests)) in
          Hashtbl.iter
            (fun name ols ->
              let est =
                match Analyze.OLS.estimates ols with
                | Some (e :: _) -> Some e
                | _ -> None
              in
              results := (name, est) :: !results)
            analyzed)
    subjects;
  List.sort compare !results

(* Slab-occupancy evidence for the streaming subjects, reported through
   the same psn-bench/1 rows as the timing estimates (these rows are
   counts of cuts, not ns/op).  They are deterministic — the walk is
   pure over the synthetic stream — so bench-compare holds them to a
   tight per-subject threshold (peak_live_cuts=1 in the Makefile/CI
   invocations): any growth of either peak past its committed baseline
   fails CI, which is the bounded-memory acceptance criterion (flat
   peak across a 10x event count).  Rows obey --only the same way the
   timing subjects do: the evidence name contains its subject's name. *)
let stream_evidence_rows ?only () =
  let keep name =
    match only with
    | None -> true
    | Some pats -> List.exists (contains name) pats
  in
  List.filter_map
    (fun (label, events) ->
      let name =
        Printf.sprintf "lattice/lattice.stream(events=%s).peak_live_cuts" label
      in
      if keep name then
        let s = stream_walk ~events in
        Some (name, Some (float_of_int (Streaming.peak_live_cuts s)))
      else None)
    [ ("10k", 10_000); ("100k", 100_000) ]

let print_rows rows =
  print_endline "== E10: clock and infrastructure microbenchmarks ==";
  print_endline
    "claim: implied scaling - strobe/clock operations are cheap enough for\n\
     sensor-node firmware; vector ops scale with n\n";
  let rows =
    List.map
      (fun (name, est) ->
        [
          name;
          (match est with Some e -> Printf.sprintf "%.1f" e | None -> "n/a");
        ])
      rows
  in
  Psn_util.Table.print ~headers:[ "operation"; "ns/op" ] ~rows ();
  print_newline ()

(* Schema "psn-bench/1" (documented in DESIGN.md): one object mapping
   "group/subject" to its OLS ns/op estimate (null when the fit failed). *)
let write_json path rows =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"psn-bench/1\",\n";
  output_string oc "  \"unit\": \"ns/op\",\n";
  output_string oc "  \"subjects\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, est) ->
      let v = match est with Some e -> Printf.sprintf "%.1f" e | None -> "null" in
      Printf.fprintf oc "    %S: %s%s\n" name v (if i < n - 1 then "," else ""))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d subjects)\n" path n

(* --- regression diffing (--compare) ------------------------------------- *)

(* Load a psn-bench/1 snapshot (the format [write_json] emits) as
   [(subject, ns/op)]; null estimates are skipped. *)
let load_baseline path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let open Psn_obs.Json in
  match of_string contents with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok doc -> (
      (match member "schema" doc with
      | Some (Str "psn-bench/1") -> ()
      | _ -> Printf.eprintf "warning: %s: not a psn-bench/1 snapshot\n" path);
      match member "subjects" doc with
      | Some (Obj fields) ->
          Ok
            (List.filter_map
               (fun (name, v) ->
                 match v with
                 | Int i -> Some (name, float_of_int i)
                 | Float f -> Some (name, f)
                 | _ -> None)
               fields)
      | _ -> Error (Printf.sprintf "%s: no \"subjects\" object" path))

(* Regression thresholds: one default percentage plus per-subject
   overrides matched by substring (first match wins), so CI can hold a
   noisy cross-machine subject to a loose bound without loosening every
   other subject with it. *)
type thresholds = { default_pct : float; per : (string * float) list }

(* "--threshold 25" or "--threshold pool.dispatch=250,analyze=60,25":
   bare numbers set the default, NAME=PCT entries the overrides. *)
let parse_thresholds spec =
  List.fold_left
    (fun acc part ->
      match acc with
      | Error _ as e -> e
      | Ok th -> (
          match String.index_opt part '=' with
          | None -> (
              match float_of_string_opt part with
              | Some p when p > 0.0 -> Ok { th with default_pct = p }
              | _ -> Error part)
          | Some i -> (
              let name = String.sub part 0 i in
              let pct = String.sub part (i + 1) (String.length part - i - 1) in
              match float_of_string_opt pct with
              | Some p when p > 0.0 && name <> "" ->
                  Ok { th with per = th.per @ [ (name, p) ] }
              | _ -> Error part)))
    (Ok { default_pct = 25.0; per = [] })
    (String.split_on_char ',' spec)

let threshold_for th name =
  match List.find_opt (fun (pat, _) -> contains name pat) th.per with
  | Some (_, p) -> p
  | None -> th.default_pct

(* For a subject that exists only in the newer snapshot, find the
   subject it is a variant of — "infra/hall.run.sharded(4)" reads
   against "infra/hall.run(...)" — so the table can report a speedup
   line instead of a bare "new" marker.  A base can carry several
   parameterizations ("hall.run(4 doors, 5min)" next to
   "hall.run(n=1000)"), so among candidates pick the one closest in
   magnitude to [now]: the variant is a re-execution of the same
   workload, not a differently-sized one. *)
let sibling_of rows name now =
  match String.index_opt name '(' with
  | None -> None
  | Some i -> (
      let head = String.sub name 0 i in
      match String.rindex_opt head '.' with
      | None -> None
      | Some j ->
          let base = String.sub head 0 j in
          List.filter_map
            (fun (other, est) ->
              match est with
              | Some ns
                when other <> name
                     && String.length other > String.length base
                     && String.sub other 0 (String.length base) = base
                     && other.[String.length base] = '(' ->
                  Some (other, ns)
              | _ -> None)
            rows
          |> List.fold_left
               (fun best (other, ns) ->
                 let d = Float.abs (log (ns /. now)) in
                 match best with
                 | Some (_, _, bd) when bd <= d -> best
                 | _ -> Some (other, ns, d))
               None
          |> Option.map (fun (other, ns, _) -> (other, ns)))

(* Per-subject delta table against a baseline snapshot; [true] when some
   subject regressed past its threshold.  Subjects present on only one
   side are reported but never fail the comparison: newer-only subjects
   get a speedup line against their closest sibling in the same run,
   and improvements past the threshold are called out as speedups. *)
let compare_against ~thresholds:th baseline rows =
  let table_rows = ref [] and regressed = ref [] in
  List.iter
    (fun (name, est) ->
      match (est, List.assoc_opt name baseline) with
      | None, _ -> ()
      | Some now, None ->
          let note =
            match if now > 0.0 then sibling_of rows name now else None with
            | Some (base_name, base_ns) ->
                Printf.sprintf "new; %.2fx vs %s" (base_ns /. now) base_name
            | None -> "new"
          in
          table_rows := [ name; "-"; Printf.sprintf "%.1f" now; note ] :: !table_rows
      | Some now, Some old ->
          let delta = if old > 0.0 then (now -. old) /. old *. 100.0 else 0.0 in
          let limit = threshold_for th name in
          let flag =
            if delta > limit then begin
              regressed := (name, limit) :: !regressed;
              "  REGRESSED"
            end
            else if delta < -.limit && now > 0.0 then
              Printf.sprintf "  %.2fx faster" (old /. now)
            else ""
          in
          table_rows :=
            [
              name;
              Printf.sprintf "%.1f" old;
              Printf.sprintf "%.1f" now;
              Printf.sprintf "%+.1f%%%s" delta flag;
            ]
            :: !table_rows)
    rows;
  Printf.printf "== bench comparison (default threshold %.0f%%%s) ==\n"
    th.default_pct
    (if th.per = [] then ""
     else
       Printf.sprintf ", %s"
         (String.concat ", "
            (List.map (fun (n, p) -> Printf.sprintf "%s=%.0f%%" n p) th.per)));
  Psn_util.Table.print
    ~headers:[ "subject"; "old ns/op"; "new ns/op"; "delta" ]
    ~rows:(List.rev !table_rows) ();
  (match !regressed with
  | [] -> print_endline "no regressions past threshold"
  | entries ->
      Printf.printf "REGRESSION: %d subject(s) slower than baseline: %s\n"
        (List.length entries)
        (String.concat ", "
           (List.rev_map
              (fun (n, limit) -> Printf.sprintf "%s (>%.0f%%)" n limit)
              entries)));
  !regressed <> []

let () =
  let json = ref None and only = ref None in
  let compare_to = ref None in
  let thresholds = ref { default_pct = 25.0; per = [] } in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--only" :: s :: rest ->
        only := Some (split_patterns s);
        parse rest
    | "--compare" :: path :: rest ->
        compare_to := Some path;
        parse rest
    | "--threshold" :: spec :: rest -> (
        match parse_thresholds spec with
        | Ok th ->
            thresholds := th;
            parse rest
        | Error part ->
            Printf.eprintf
              "bench: --threshold expects PCT or NAME=PCT entries \
               (comma-separated, positive percents); bad entry %S\n"
              part;
            exit 2)
    | arg :: _ ->
        Printf.eprintf
          "usage: bench [--only SUBSTR[,SUBSTR...]] [--json FILE] \
           [--compare OLD.json [--threshold [PCT][,NAME=PCT...]]]; \
           unknown argument %S\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rows =
    List.sort compare
      (run_microbenches ?only:!only () @ stream_evidence_rows ?only:!only ())
  in
  print_rows rows;
  (match !json with Some path -> write_json path rows | None -> ());
  let regression =
    match !compare_to with
    | None -> false
    | Some path -> (
        match load_baseline path with
        | Error msg ->
            Printf.eprintf "bench: %s\n" msg;
            exit 2
        | Ok baseline -> compare_against ~thresholds:!thresholds baseline rows)
  in
  (* The claim-table part of the default run; skipped in micro-only
     invocations (--only / --json / --compare) so `make bench-json` stays
     fast. *)
  if !json = None && !only = None && !compare_to = None then begin
    let quick =
      match Sys.getenv_opt "PSN_BENCH_FULL" with Some _ -> false | None -> true
    in
    Psn_experiments.Experiments.print_all ~quick ()
  end;
  if regression then exit 1
