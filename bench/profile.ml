(* Raw-loop driver for profilers: repeats the engine.schedule+run(100)
   subject without the bechamel harness, so sampling profilers see only
   the code under test.

     dune exec bench/profile.exe -- 1000000

   runs 10^8 events in ~10 s of pure scheduling and dispatch. *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000 in
  for _ = 1 to n do
    let engine = Psn_sim.Engine.create () in
    for i = 1 to 100 do
      ignore
        (Psn_sim.Engine.schedule_at engine (Psn_sim.Sim_time.of_us i)
           (fun () -> ()))
    done;
    Psn_sim.Engine.run engine
  done
